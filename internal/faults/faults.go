// Package faults is a seeded, deterministic fault injector for the
// simulated cloud solver path. The paper's workflow submits every
// rebalancing CQM to a cloud hybrid solver from inside an HPC job — a
// network hop that in practice fails, throttles, and times out. The
// injector reproduces those availability gaps on demand so the
// resilience layer (internal/resilient) can be exercised and measured
// deterministically: the full fault schedule is a pure function of the
// configuration's seed, so identical seeds yield identical schedules,
// retry counts, and final plans.
//
// Fault taxonomy:
//
//   - Transient — the submission fails with a retryable network error
//     before the solver runs (connection reset, DNS, 5xx).
//   - Timeout — the solve is accepted but never returns within its
//     deadline; the attempt consumes Config.TimeoutDelay of (injected)
//     clock time before the error surfaces.
//   - Throttle — the service rejects the request up front with a quota
//     error (HTTP 429-class).
//   - Corrupt — the solve "succeeds" but the returned sample was
//     damaged in flight: bits are flipped so the reported objective and
//     feasibility no longer match the sample. Detected by response
//     validation, not by an error.
//   - Panic — the solver goroutine panics mid-solve (crashing worker,
//     poisoned reply tripping a client bug). Contained by the panic
//     isolation layer (solve.Protected), not by retries.
//
// Disk fault taxonomy (the write-ahead log's file layer, internal/wal):
//
//   - ShortWrite — a write persists only a prefix of its bytes before
//     the error surfaces, the torn-tail case a crash mid-append leaves
//     behind. Recovery must truncate, never trust the tail.
//   - SyncErr — fsync fails; the durability guarantee of everything
//     buffered since the last successful sync is void.
//   - ReadCorrupt — a read returns bit-flipped data (latent sector
//     error, bad cable). Detected by frame CRCs, not by an error.
//   - CrashPoint — the simulated machine dies: every subsequent file
//     operation fails with ErrCrashed until the injector is Reset
//     (modelling a restart). Tests also trigger it directly with
//     Injector.Crash to cut power at an exact point.
//
// The injection surface is the Hook interface, consulted once per solve
// attempt by the simulated cloud backend (hybrid.Options.Faults), and
// once per file operation by the WAL's fault-wrapping FS.
package faults

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None is a clean attempt.
	None Kind = iota
	// Transient is a retryable network failure before the solve runs.
	Transient
	// Timeout is a per-job solve deadline expiry.
	Timeout
	// Throttle is a quota/rate-limit rejection.
	Throttle
	// Corrupt damages the returned sample instead of erroring.
	Corrupt
	// Panic makes the solver goroutine panic mid-solve, modelling a
	// crashing worker or a poisoned reply that trips a bug in the
	// client. Only the isolation layer (solve.Protected) stands between
	// it and the process.
	Panic
	// ShortWrite persists only a prefix of a file write before erroring
	// — the torn tail a crash mid-append leaves on disk.
	ShortWrite
	// SyncErr fails an fsync, voiding the durability of everything
	// buffered since the last successful sync.
	SyncErr
	// ReadCorrupt flips bits in a file read instead of erroring; only a
	// checksum stands between it and the caller.
	ReadCorrupt
	// CrashPoint kills the simulated machine: the faulted operation and
	// every one after it fail with ErrCrashed until Injector.Reset
	// models the restart.
	CrashPoint
)

const numKinds = int(CrashPoint) + 1

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Timeout:
		return "timeout"
	case Throttle:
		return "throttle"
	case Corrupt:
		return "corrupt"
	case Panic:
		return "panic"
	case ShortWrite:
		return "short-write"
	case SyncErr:
		return "sync-err"
	case ReadCorrupt:
		return "read-corrupt"
	case CrashPoint:
		return "crash-point"
	}
	return "unknown"
}

// Sentinel errors the transport-level faults surface as. They are
// wrapped with %w at the injection site, so callers classify them with
// errors.Is.
var (
	// ErrTransient is a retryable network failure.
	ErrTransient = errors.New("faults: transient network error")
	// ErrTimeout is a per-job cloud solve deadline expiry.
	ErrTimeout = errors.New("faults: cloud solve timed out")
	// ErrThrottled is a quota/rate-limit rejection.
	ErrThrottled = errors.New("faults: request throttled (quota exceeded)")
	// ErrShortWrite is the error a torn write surfaces after persisting
	// only a prefix of its bytes.
	ErrShortWrite = errors.New("faults: short write (torn tail)")
	// ErrSync is a failed fsync.
	ErrSync = errors.New("faults: fsync failed")
	// ErrCrashed marks every file operation after a CrashPoint: the
	// simulated machine is down until the injector is Reset.
	ErrCrashed = errors.New("faults: simulated crash (machine down)")
)

// Err returns the sentinel error a fault of this kind surfaces as. None,
// Corrupt and ReadCorrupt return nil: a corrupted response (or read) is
// returned, not errored (that is what makes it dangerous).
func (k Kind) Err() error {
	switch k {
	case Transient:
		return ErrTransient
	case Timeout:
		return ErrTimeout
	case Throttle:
		return ErrThrottled
	case ShortWrite:
		return ErrShortWrite
	case SyncErr:
		return ErrSync
	case CrashPoint:
		return ErrCrashed
	}
	return nil
}

// Retryable reports whether err is (or wraps) one of the injectable
// transport faults — the class a resilient client may safely resubmit.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrThrottled)
}

// Config shapes the fault distribution. Each attempt draws one uniform
// variate; the rates carve it up, so they are mutually exclusive per
// attempt and must sum to at most 1.
type Config struct {
	// Seed drives the schedule; the whole schedule is a pure function
	// of (Config, attempt index).
	Seed int64
	// Transient, Timeout, Throttle, Corrupt, Panic are per-attempt
	// injection probabilities of each kind.
	Transient, Timeout, Throttle, Corrupt, Panic float64
	// ShortWrite, SyncErr, ReadCorrupt, CrashPoint are per-operation
	// injection probabilities of the disk fault kinds (the WAL's file
	// layer consults the hook once per read/write/sync). A drawn
	// CrashPoint is sticky: the injector stays crashed until Reset.
	ShortWrite, SyncErr, ReadCorrupt, CrashPoint float64
	// TimeoutDelay is the simulated time a Timeout fault consumes
	// before surfacing (measured on the injected solve.Clock).
	TimeoutDelay time.Duration
	// MaxFaults caps the total number of injected faults (0 = no cap);
	// useful for demos that should eventually converge.
	MaxFaults int
}

// Uniform splits a total fault rate over the four kinds in fixed
// proportions: 40% transient, 20% timeout, 20% throttle, 20% corrupt.
func Uniform(seed int64, rate float64) Config {
	return Config{
		Seed:      seed,
		Transient: 0.4 * rate,
		Timeout:   0.2 * rate,
		Throttle:  0.2 * rate,
		Corrupt:   0.2 * rate,
	}
}

// Rate returns the total per-attempt fault probability.
func (c Config) Rate() float64 {
	return c.Transient + c.Timeout + c.Throttle + c.Corrupt + c.Panic +
		c.ShortWrite + c.SyncErr + c.ReadCorrupt + c.CrashPoint
}

// Disk returns a configuration injecting only the disk fault kinds, the
// adversary the WAL's recovery path is property-tested under: torn
// writes, failed fsyncs and silently corrupted reads in a 2:1:2 split
// of rate. CrashPoint is left to the explicit Injector.Crash switch so
// tests cut power at exact points instead of at random ones.
func Disk(seed int64, rate float64) Config {
	return Config{
		Seed:        seed,
		ShortWrite:  0.4 * rate,
		SyncErr:     0.2 * rate,
		ReadCorrupt: 0.4 * rate,
	}
}

// Chaos returns a configuration injecting only the two faults no
// transport-level retry can paper over — corrupted replies and solver
// panics — splitting rate evenly between them. It is the adversary the
// trust-but-verify layer (verify + hedge + solve.Protected) is built
// for: Uniform's transient/timeout/throttle faults exercise retries,
// Chaos exercises verification and isolation.
func Chaos(seed int64, rate float64) Config {
	return Config{
		Seed:    seed,
		Corrupt: 0.5 * rate,
		Panic:   0.5 * rate,
	}
}

// mix derives a well-spread 64-bit stream seed from (seed, seq),
// splitmix64-style, so consecutive attempts get decorrelated draws.
func mix(seed, seq int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(seq)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it non-negative for rand.NewSource
}

// at returns the fault decision of attempt seq — a pure function of the
// configuration, the source of the injector's reproducibility.
func (c Config) at(seq int) Fault {
	rng := rand.New(rand.NewSource(mix(c.Seed, int64(seq))))
	u := rng.Float64()
	f := Fault{Seq: seq, rngSeed: rng.Int63()}
	// The rates carve the unit interval in declaration order, so each
	// attempt draws at most one kind.
	cum := 0.0
	for _, step := range [...]struct {
		rate float64
		kind Kind
	}{
		{c.Transient, Transient},
		{c.Timeout, Timeout},
		{c.Throttle, Throttle},
		{c.Corrupt, Corrupt},
		{c.Panic, Panic},
		{c.ShortWrite, ShortWrite},
		{c.SyncErr, SyncErr},
		{c.ReadCorrupt, ReadCorrupt},
		{c.CrashPoint, CrashPoint},
	} {
		cum += step.rate
		if u < cum {
			f.Kind = step.kind
			if step.kind == Timeout {
				f.Delay = c.TimeoutDelay
			}
			break
		}
	}
	return f
}

// Schedule returns the fault kinds of attempts 0..n-1 — exactly what a
// fresh Injector with this config will produce (ignoring MaxFaults).
// Tests and reports use it to assert and display the schedule.
func (c Config) Schedule(n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = c.at(i).Kind
	}
	return out
}

// Fault is one attempt's injection decision.
type Fault struct {
	// Kind is the fault class (None for a clean attempt).
	Kind Kind
	// Seq is the 0-based attempt index the decision belongs to.
	Seq int
	// Delay is the simulated time the fault consumes before surfacing
	// (Timeout faults; zero otherwise).
	Delay time.Duration

	rngSeed int64
}

// CorruptSample deterministically flips a small subset of sample's bits
// in place (between 1 and len/8 of them), modelling a response damaged
// in flight. It is a no-op unless Kind is Corrupt.
func (f Fault) CorruptSample(sample []bool) {
	if f.Kind != Corrupt || len(sample) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(f.rngSeed))
	n := 1 + rng.Intn(max(1, len(sample)/8))
	for i := 0; i < n; i++ {
		j := rng.Intn(len(sample))
		sample[j] = !sample[j]
	}
}

// CorruptBytes deterministically flips between 1 and 8 bits of p in
// place, modelling a read damaged by a latent sector error. It is a
// no-op unless Kind is ReadCorrupt.
func (f Fault) CorruptBytes(p []byte) {
	if f.Kind != ReadCorrupt || len(p) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(f.rngSeed))
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		j := rng.Intn(len(p))
		p[j] ^= 1 << uint(rng.Intn(8))
	}
}

// ShortLen returns how many of n bytes a torn write persists: a
// deterministic strict prefix (0 <= len < n, for n > 0). It returns n
// unchanged unless Kind is ShortWrite.
func (f Fault) ShortLen(n int) int {
	if f.Kind != ShortWrite || n <= 0 {
		return n
	}
	rng := rand.New(rand.NewSource(f.rngSeed))
	return rng.Intn(n)
}

// Hook is the injection surface a simulated cloud component consults
// once per solve attempt. *Injector implements it; a nil Hook means a
// perfectly reliable cloud.
type Hook interface {
	// Next consumes and returns the next attempt's fault decision.
	Next() Fault
}

// Injector hands out the configured schedule attempt by attempt. It is
// safe for concurrent use; under concurrent submitters the assignment
// of schedule slots to attempts follows arrival order.
type Injector struct {
	mu      sync.Mutex
	cfg     Config
	seq     int
	crashed bool
	counts  [numKinds]int
}

// NewInjector returns an injector at the start of cfg's schedule.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Next implements Hook.
func (i *Injector) Next() Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		// CrashPoint is sticky: the machine is down, every operation
		// fails until Reset models the restart.
		f := Fault{Kind: CrashPoint, Seq: i.seq}
		i.seq++
		i.counts[CrashPoint]++
		return f
	}
	f := i.cfg.at(i.seq)
	i.seq++
	if f.Kind != None && i.cfg.MaxFaults > 0 && i.injectedLocked() >= i.cfg.MaxFaults {
		f = Fault{Seq: f.Seq} // cap reached: serve clean attempts from here on
	}
	if f.Kind == CrashPoint {
		i.crashed = true
	}
	i.counts[f.Kind]++
	return f
}

// Crash flips the injector into the crashed state at an exact point:
// the next and every following operation fails with ErrCrashed until
// Reset. Tests use it to cut power deterministically mid-sequence.
func (i *Injector) Crash() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashed = true
}

// Reset models the machine restarting: the crashed state clears and the
// schedule continues from the current attempt index.
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashed = false
}

// Crashed reports whether the injector is in the post-CrashPoint state.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

func (i *Injector) injectedLocked() int {
	n := 0
	for k := 1; k < numKinds; k++ {
		n += i.counts[k]
	}
	return n
}

// Injected returns the total number of faults injected so far.
func (i *Injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injectedLocked()
}

// Attempts returns how many attempts the injector has decided.
func (i *Injector) Attempts() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seq
}

// Counts returns the per-kind injection counts so far (indexable by
// Kind; Counts()[None] counts clean attempts).
func (i *Injector) Counts() [numKinds]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}

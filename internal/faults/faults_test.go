package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestScheduleDeterministicPerSeed(t *testing.T) {
	cfg := Uniform(42, 0.5)
	a := cfg.Schedule(64)
	b := cfg.Schedule(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := Uniform(43, 0.5).Schedule(64)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-attempt schedules")
	}
}

func TestInjectorFollowsSchedule(t *testing.T) {
	cfg := Uniform(7, 0.6)
	want := cfg.Schedule(32)
	inj := NewInjector(cfg)
	for i, k := range want {
		f := inj.Next()
		if f.Kind != k {
			t.Fatalf("attempt %d: injector %v, schedule %v", i, f.Kind, k)
		}
		if f.Seq != i {
			t.Fatalf("attempt %d: Seq = %d", i, f.Seq)
		}
	}
	if inj.Attempts() != 32 {
		t.Fatalf("Attempts = %d, want 32", inj.Attempts())
	}
	counts := inj.Counts()
	injected, total := 0, 0
	for k, n := range counts {
		total += n
		if Kind(k) != None {
			injected += n
		}
	}
	if total != 32 {
		t.Fatalf("counts sum to %d, want 32", total)
	}
	if inj.Injected() != injected {
		t.Fatalf("Injected() = %d, counts say %d", inj.Injected(), injected)
	}
}

func TestRateExtremes(t *testing.T) {
	for _, k := range Uniform(3, 0).Schedule(50) {
		if k != None {
			t.Fatal("rate 0 injected a fault")
		}
	}
	for _, k := range Uniform(3, 1).Schedule(50) {
		if k == None {
			t.Fatal("rate 1 produced a clean attempt")
		}
	}
}

func TestUniformSplit(t *testing.T) {
	c := Uniform(1, 0.5)
	if c.Rate() != 0.5 {
		t.Fatalf("Rate = %v", c.Rate())
	}
	if c.Transient != 0.2 || c.Timeout != 0.1 || c.Throttle != 0.1 || c.Corrupt != 0.1 {
		t.Fatalf("split %+v", c)
	}
}

func TestTimeoutCarriesDelay(t *testing.T) {
	cfg := Config{Seed: 5, Timeout: 1, TimeoutDelay: 30 * time.Millisecond}
	f := NewInjector(cfg).Next()
	if f.Kind != Timeout || f.Delay != 30*time.Millisecond {
		t.Fatalf("fault %+v", f)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	cfg := Uniform(9, 1)
	cfg.MaxFaults = 3
	inj := NewInjector(cfg)
	for i := 0; i < 20; i++ {
		inj.Next()
	}
	if inj.Injected() != 3 {
		t.Fatalf("Injected = %d, want cap 3", inj.Injected())
	}
	if inj.Counts()[None] != 17 {
		t.Fatalf("clean attempts = %d, want 17", inj.Counts()[None])
	}
}

func TestKindStringsAndErrs(t *testing.T) {
	names := map[Kind]string{
		None: "none", Transient: "transient", Timeout: "timeout",
		Throttle: "throttle", Corrupt: "corrupt", Panic: "panic", Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if None.Err() != nil || Corrupt.Err() != nil || Panic.Err() != nil {
		t.Error("None/Corrupt/Panic should not error (they surface in-band)")
	}
	if !errors.Is(Transient.Err(), ErrTransient) ||
		!errors.Is(Timeout.Err(), ErrTimeout) ||
		!errors.Is(Throttle.Err(), ErrThrottled) {
		t.Error("sentinel mapping broken")
	}
}

func TestRetryable(t *testing.T) {
	for _, err := range []error{ErrTransient, ErrTimeout, ErrThrottled} {
		if !Retryable(err) {
			t.Errorf("%v not retryable", err)
		}
		if !Retryable(fmt.Errorf("hybrid: job 3: %w", err)) {
			t.Errorf("wrapped %v not retryable", err)
		}
	}
	if Retryable(errors.New("boom")) || Retryable(nil) {
		t.Error("non-fault errors must not be retryable")
	}
}

func TestPanicKindScheduled(t *testing.T) {
	// A panic-only config must inject Panic (and nothing else) at
	// roughly the configured rate, deterministically per seed.
	cfg := Config{Seed: 11, Panic: 0.5}
	sched := cfg.Schedule(200)
	panics := 0
	for _, k := range sched {
		switch k {
		case Panic:
			panics++
		case None:
		default:
			t.Fatalf("unexpected kind %v in a panic-only schedule", k)
		}
	}
	if panics < 60 || panics > 140 {
		t.Fatalf("panic count %d far from 50%% of 200", panics)
	}
	again := cfg.Schedule(200)
	for i := range sched {
		if sched[i] != again[i] {
			t.Fatalf("schedule not deterministic at %d", i)
		}
	}
}

func TestChaosSplit(t *testing.T) {
	cfg := Chaos(3, 0.3)
	if cfg.Corrupt != 0.15 || cfg.Panic != 0.15 {
		t.Fatalf("Chaos split = %+v", cfg)
	}
	if r := cfg.Rate(); r < 0.299 || r > 0.301 {
		t.Fatalf("Rate() = %v, want 0.3", r)
	}
	for _, k := range cfg.Schedule(100) {
		if k != None && k != Corrupt && k != Panic {
			t.Fatalf("Chaos schedule contains %v", k)
		}
	}
}

func TestCorruptSampleDeterministicAndBounded(t *testing.T) {
	cfg := Config{Seed: 11, Corrupt: 1}
	f := NewInjector(cfg).Next()
	if f.Kind != Corrupt {
		t.Fatalf("kind %v", f.Kind)
	}
	mk := func() []bool {
		s := make([]bool, 64)
		for i := range s {
			s[i] = i%3 == 0
		}
		return s
	}
	a, b, orig := mk(), mk(), mk()
	f.CorruptSample(a)
	f.CorruptSample(b)
	flips := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption not deterministic at bit %d", i)
		}
		if a[i] != orig[i] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("corrupt fault flipped nothing")
	}
	if flips > len(a)/8 {
		t.Fatalf("flipped %d bits, cap is %d", flips, len(a)/8)
	}
	// Non-corrupt faults and empty samples are no-ops.
	clean := Fault{Kind: Transient}
	c := mk()
	clean.CorruptSample(c)
	for i := range c {
		if c[i] != orig[i] {
			t.Fatal("non-corrupt fault mutated the sample")
		}
	}
	f.CorruptSample(nil) // must not panic
}

func TestDiskKindsScheduledAndSticky(t *testing.T) {
	// A disk-only config draws only disk kinds, deterministically per
	// seed, and a drawn CrashPoint makes the injector sticky-crashed.
	cfg := Config{Seed: 7, ShortWrite: 0.2, SyncErr: 0.2, ReadCorrupt: 0.2, CrashPoint: 0.2}
	sched := cfg.Schedule(100)
	counts := map[Kind]int{}
	for _, k := range sched {
		switch k {
		case None, ShortWrite, SyncErr, ReadCorrupt, CrashPoint:
			counts[k]++
		default:
			t.Fatalf("non-disk kind %v in disk-only schedule", k)
		}
	}
	for _, k := range []Kind{ShortWrite, SyncErr, ReadCorrupt, CrashPoint} {
		if counts[k] == 0 {
			t.Errorf("kind %v never drawn in 100 attempts at rate 0.2", k)
		}
	}
	inj := NewInjector(cfg)
	crashedAt := -1
	for i := 0; i < 100; i++ {
		f := inj.Next()
		if crashedAt >= 0 && f.Kind != CrashPoint {
			t.Fatalf("attempt %d after crash at %d drew %v, want CrashPoint", i, crashedAt, f.Kind)
		}
		if crashedAt < 0 && f.Kind == CrashPoint {
			crashedAt = i
		}
	}
	if crashedAt < 0 {
		t.Fatal("no CrashPoint drawn")
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed after drawing CrashPoint")
	}
	inj.Reset()
	if inj.Crashed() {
		t.Fatal("Reset did not clear the crashed state")
	}
}

func TestCrashSwitchManual(t *testing.T) {
	inj := NewInjector(Config{Seed: 1}) // clean schedule
	if f := inj.Next(); f.Kind != None {
		t.Fatalf("clean config drew %v", f.Kind)
	}
	inj.Crash()
	for i := 0; i < 5; i++ {
		f := inj.Next()
		if f.Kind != CrashPoint {
			t.Fatalf("post-Crash attempt drew %v, want CrashPoint", f.Kind)
		}
		if !errors.Is(f.Kind.Err(), ErrCrashed) {
			t.Fatalf("CrashPoint error = %v, want ErrCrashed", f.Kind.Err())
		}
	}
	inj.Reset()
	if f := inj.Next(); f.Kind != None {
		t.Fatalf("post-Reset attempt drew %v, want None", f.Kind)
	}
}

func TestShortLenDeterministicStrictPrefix(t *testing.T) {
	cfg := Config{Seed: 3, ShortWrite: 1}
	inj := NewInjector(cfg)
	f := inj.Next()
	if f.Kind != ShortWrite {
		t.Fatalf("kind = %v, want ShortWrite", f.Kind)
	}
	for _, n := range []int{1, 2, 17, 4096} {
		got, again := f.ShortLen(n), f.ShortLen(n)
		if got != again {
			t.Fatalf("ShortLen(%d) not deterministic: %d vs %d", n, got, again)
		}
		if got < 0 || got >= n {
			t.Fatalf("ShortLen(%d) = %d, want strict prefix in [0,%d)", n, got, n)
		}
	}
	clean := Fault{Kind: None}
	if clean.ShortLen(10) != 10 {
		t.Fatal("ShortLen must be identity for non-ShortWrite faults")
	}
}

func TestCorruptBytesDeterministicAndScoped(t *testing.T) {
	cfg := Config{Seed: 5, ReadCorrupt: 1}
	inj := NewInjector(cfg)
	f := inj.Next()
	if f.Kind != ReadCorrupt {
		t.Fatalf("kind = %v, want ReadCorrupt", f.Kind)
	}
	if f.Kind.Err() != nil {
		t.Fatal("ReadCorrupt must surface in-band, not as an error")
	}
	orig := []byte("the quick brown fox jumps over the lazy dog")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	f.CorruptBytes(a)
	f.CorruptBytes(b)
	if string(a) == string(orig) {
		t.Fatal("CorruptBytes changed nothing")
	}
	if string(a) != string(b) {
		t.Fatal("CorruptBytes not deterministic for one fault")
	}
	c := append([]byte(nil), orig...)
	Fault{Kind: None}.CorruptBytes(c)
	if string(c) != string(orig) {
		t.Fatal("CorruptBytes must be a no-op for non-ReadCorrupt faults")
	}
}

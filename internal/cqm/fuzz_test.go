package cqm

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadModel asserts the model parser never panics and that anything
// it accepts re-serializes and re-parses to the same variable and
// constraint counts.
func FuzzReadModel(f *testing.F) {
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.AddObjectiveLinear(a, 2)
	m.AddObjectiveQuad(a, b, -1)
	var sq LinExpr
	sq.Add(a, 1)
	sq.Add(b, -1)
	m.AddObjectiveSquared(sq)
	m.AddConstraint("c", sq, Le, 1)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("CQM 1\n")
	f.Add("CQM 1\nVAR 0 \"x\"\nOBJ LIN 0 1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := ReadModel(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteModel(&out, parsed); err != nil {
			t.Fatalf("accepted model failed to serialize: %v", err)
		}
		back, err := ReadModel(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVars() != parsed.NumVars() || back.NumConstraints() != parsed.NumConstraints() {
			t.Fatal("round trip changed the model shape")
		}
	})
}

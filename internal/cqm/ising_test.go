package cqm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randQUBO(rng *rand.Rand, n int) *QUBO {
	q := &QUBO{
		NumVars:  n,
		BaseVars: n,
		Linear:   make([]float64, n),
		Quad:     make(map[QPair]float64),
		Offset:   float64(rng.Intn(9) - 4),
	}
	for i := range q.Linear {
		q.Linear[i] = float64(rng.Intn(11) - 5)
	}
	for k := 0; k < 2*n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		q.Quad[makePair(VarID(a), VarID(b))] += float64(rng.Intn(7) - 3)
	}
	return q
}

func TestIsingEnergyMatchesQUBO(t *testing.T) {
	// E_qubo(x) == E_ising(s) for x = (1+s)/2, i.e. identical bool
	// vectors under the true=+1 convention.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		q := randQUBO(rng, n)
		is := q.ToIsing()
		for trial := 0; trial < 30; trial++ {
			x := make([]bool, n)
			for i := range x {
				x[i] = rng.Intn(2) == 0
			}
			if !almostEqual(q.Energy(x), is.Energy(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIsingRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		q := randQUBO(rng, n)
		back := q.ToIsing().ToQUBO()
		if back.NumVars != q.NumVars || back.BaseVars != q.BaseVars {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			x := make([]bool, n)
			for i := range x {
				x[i] = rng.Intn(2) == 0
			}
			if !almostEqual(q.Energy(x), back.Energy(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIsingKnownValues(t *testing.T) {
	// E = x0: as Ising, E = 1/2 + s0/2.
	q := &QUBO{NumVars: 1, BaseVars: 1, Linear: []float64{1}, Quad: map[QPair]float64{}}
	is := q.ToIsing()
	if !almostEqual(is.Offset, 0.5) || !almostEqual(is.H[0], 0.5) {
		t.Fatalf("Ising = %+v", is)
	}
	if !almostEqual(is.Energy([]bool{true}), 1) || !almostEqual(is.Energy([]bool{false}), 0) {
		t.Fatal("Ising energies wrong")
	}
	// E = x0 x1: J = 1/4, h = 1/4 each, offset 1/4.
	q2 := &QUBO{NumVars: 2, BaseVars: 2, Linear: []float64{0, 0},
		Quad: map[QPair]float64{{A: 0, B: 1}: 1}}
	is2 := q2.ToIsing()
	if !almostEqual(is2.J[QPair{A: 0, B: 1}], 0.25) {
		t.Fatalf("J = %v", is2.J)
	}
	if !almostEqual(is2.Energy([]bool{true, true}), 1) {
		t.Fatal("x0x1 energy at (1,1)")
	}
	if !almostEqual(is2.Energy([]bool{true, false}), 0) {
		t.Fatal("x0x1 energy at (1,0)")
	}
}

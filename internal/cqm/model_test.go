package cqm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// randModel builds a random model with nv variables: random linear, quad,
// squared-expression objective and a few constraints of every sense.
func randModel(rng *rand.Rand, nv int) *Model {
	m := New()
	for i := 0; i < nv; i++ {
		m.AddBinary("x")
	}
	for i := 0; i < nv; i++ {
		if rng.Intn(2) == 0 {
			m.AddObjectiveLinear(VarID(i), float64(rng.Intn(11)-5))
		}
	}
	for k := 0; k < nv; k++ {
		a, b := VarID(rng.Intn(nv)), VarID(rng.Intn(nv))
		m.AddObjectiveQuad(a, b, float64(rng.Intn(9)-4))
	}
	for k := 0; k < 3; k++ {
		var e LinExpr
		e.Offset = float64(rng.Intn(7) - 3)
		for i := 0; i < nv; i++ {
			if rng.Intn(2) == 0 {
				e.Add(VarID(i), float64(rng.Intn(7)-3))
			}
		}
		m.AddObjectiveSquared(e)
	}
	m.AddObjectiveOffset(float64(rng.Intn(5)))
	senses := []Sense{Eq, Le, Ge}
	for k := 0; k < 3; k++ {
		var e LinExpr
		for i := 0; i < nv; i++ {
			if rng.Intn(2) == 0 {
				e.Add(VarID(i), float64(rng.Intn(5)-2))
			}
		}
		m.AddConstraint("c", e, senses[k%3], float64(rng.Intn(5)-1))
	}
	return m
}

func randAssign(rng *rand.Rand, n int) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 0
	}
	return x
}

func TestLinExprNormalize(t *testing.T) {
	var e LinExpr
	e.Add(3, 2)
	e.Add(1, 5)
	e.Add(3, -2) // cancels var 3
	e.Add(1, 1)
	e.Normalize()
	if len(e.Terms) != 1 || e.Terms[0].Var != 1 || e.Terms[0].Coef != 6 {
		t.Fatalf("Normalize got %+v, want single term 6*x1", e.Terms)
	}
}

func TestLinExprValue(t *testing.T) {
	e := LinExpr{Terms: []Term{{0, 2}, {2, -3}}, Offset: 1}
	x := []bool{true, false, true}
	if got := e.Value(x); !almostEqual(got, 0) {
		t.Fatalf("Value = %v, want 0", got)
	}
}

func TestConstraintViolation(t *testing.T) {
	e := LinExpr{Terms: []Term{{0, 1}, {1, 1}}}
	x11 := []bool{true, true}
	x00 := []bool{false, false}
	cases := []struct {
		sense   Sense
		rhs     float64
		x       []bool
		wantGap float64
	}{
		{Eq, 1, x11, 1},
		{Eq, 2, x11, 0},
		{Le, 1, x11, 1},
		{Le, 2, x11, 0},
		{Ge, 1, x00, 1},
		{Ge, 0, x00, 0},
	}
	for i, c := range cases {
		con := Constraint{Expr: e, Sense: c.sense, RHS: c.rhs}
		if got := con.Violation(c.x); !almostEqual(got, c.wantGap) {
			t.Errorf("case %d: Violation = %v, want %v", i, got, c.wantGap)
		}
	}
}

func TestSenseString(t *testing.T) {
	if Eq.String() != "==" || Le.String() != "<=" || Ge.String() != ">=" {
		t.Fatal("Sense.String mismatch")
	}
	if !strings.Contains(Sense(9).String(), "9") {
		t.Fatal("unknown sense should include the number")
	}
}

func TestModelObjectiveAgainstManual(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.AddObjectiveLinear(a, 3)
	m.AddObjectiveQuad(a, b, -2)
	m.AddObjectiveQuad(b, b, 4) // diagonal -> linear for binaries
	var sq LinExpr
	sq.Add(a, 1)
	sq.Add(b, -1)
	sq.Offset = 1
	m.AddObjectiveSquared(sq)
	m.AddObjectiveOffset(10)

	// x = (1,1): 3 - 2 + 4 + (1-1+1)^2 + 10 = 16.
	if got := m.Objective([]bool{true, true}); !almostEqual(got, 16) {
		t.Fatalf("Objective(1,1) = %v, want 16", got)
	}
	// x = (0,1): 0 + 0 + 4 + (0-1+1)^2 + 10 = 14.
	if got := m.Objective([]bool{false, true}); !almostEqual(got, 14) {
		t.Fatalf("Objective(0,1) = %v, want 14", got)
	}
}

func TestFeasibleAndCounts(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	var e LinExpr
	e.Add(a, 1)
	e.Add(b, 1)
	m.AddConstraint("sum==1", e, Eq, 1)
	m.AddConstraint("a<=0", LinExpr{Terms: []Term{{a, 1}}}, Le, 0)
	eq, ineq := m.CountConstraintSenses()
	if eq != 1 || ineq != 1 {
		t.Fatalf("CountConstraintSenses = (%d,%d), want (1,1)", eq, ineq)
	}
	if !m.Feasible([]bool{false, true}, 1e-9) {
		t.Fatal("(0,1) should be feasible")
	}
	if m.Feasible([]bool{true, false}, 1e-9) {
		t.Fatal("(1,0) violates a<=0")
	}
	if got := m.TotalViolation([]bool{true, true}); !almostEqual(got, 2) {
		t.Fatalf("TotalViolation = %v, want 2", got)
	}
	if v := m.Violations([]bool{true, true}); len(v) != 2 {
		t.Fatalf("Violations len = %d", len(v))
	}
}

func TestStatsAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randModel(rng, 6)
	s := m.Stats()
	if s.Vars != 6 || s.Constraints != 3 || s.SquaredExprs != 3 {
		t.Fatalf("Stats = %+v", s)
	}
	if !strings.Contains(m.String(), "vars=6") {
		t.Fatalf("String = %q", m.String())
	}
	if m.VarName(0) != "x" || !strings.Contains(m.VarName(99), "99") {
		t.Fatal("VarName mismatch")
	}
}

func TestEvaluatorMatchesBruteForce(t *testing.T) {
	// The incremental evaluator's energy must always equal
	// objective + sum of weighted squared violations computed from
	// scratch, across random flips.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 8)
		const w = 7.5
		ev := NewEvaluator(m, w)
		ev.Reset(randAssign(rng, 8))
		for step := 0; step < 50; step++ {
			v := VarID(rng.Intn(8))
			delta := ev.FlipDelta(v)
			before := ev.Energy()
			got := ev.Flip(v)
			if !almostEqual(delta, got) {
				return false
			}
			if !almostEqual(before+delta, ev.Energy()) {
				return false
			}
			x := ev.Assignment()
			want := m.Objective(x)
			for ci := range m.constraints {
				gap := m.constraints[ci].Violation(x)
				want += w * gap * gap
			}
			if !almostEqual(ev.Energy(), want) {
				return false
			}
			if !almostEqual(ev.ObjectiveValue(), m.Objective(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatorFeasibleAgreesWithModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 6)
		ev := NewEvaluator(m, 1)
		x := randAssign(rng, 6)
		ev.Reset(x)
		return ev.Feasible(1e-9) == m.Feasible(x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatorPenaltyControls(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	m.AddConstraint("a==0", LinExpr{Terms: []Term{{a, 1}}}, Eq, 0)
	ev := NewEvaluator(m, 2)
	ev.Reset([]bool{true})
	if !almostEqual(ev.Energy(), 2) { // violation 1, squared, weight 2
		t.Fatalf("Energy = %v, want 2", ev.Energy())
	}
	if !almostEqual(ev.PenaltyValue(), 2) {
		t.Fatalf("PenaltyValue = %v, want 2", ev.PenaltyValue())
	}
	ev.ScalePenalties(3)
	if !almostEqual(ev.Energy(), 6) {
		t.Fatalf("Energy after scale = %v, want 6", ev.Energy())
	}
	ev.SetPenalty(0, 1)
	if !almostEqual(ev.Energy(), 1) {
		t.Fatalf("Energy after SetPenalty = %v, want 1", ev.Energy())
	}
	if !ev.Get(a) {
		t.Fatal("Get mismatch")
	}
}

func TestEvaluatorResetPanicsOnBadLength(t *testing.T) {
	m := New()
	m.AddBinary("a")
	ev := NewEvaluator(m, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with wrong length did not panic")
		}
	}()
	ev.Reset([]bool{true, false})
}

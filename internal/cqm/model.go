// Package cqm implements a Constrained Quadratic Model (CQM) over binary
// variables, the input format of D-Wave's Leap hybrid CQM solver that the
// paper targets. A model has a quadratic objective and a set of linear
// equality / inequality constraints.
//
// The objective supports three kinds of terms:
//
//   - plain linear terms            sum_i a_i x_i
//   - plain quadratic terms         sum_{ij} q_ij x_i x_j
//   - squared linear expressions    sum_k (l_k(x))^2
//
// Squared linear expressions are first-class because the paper's LRP
// objective is exactly a sum of squared sparse linear forms
// (sum_i (L'_i - L_avg)^2); keeping that structure makes model size
// O(nonzeros) instead of O(nonzeros^2) and enables O(degree) incremental
// re-evaluation under single-bit flips (see Evaluator).
package cqm

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// VarID identifies a binary variable within a model.
type VarID int

// Term is one linear monomial a * x.
type Term struct {
	Var  VarID
	Coef float64
}

// LinExpr is a sparse linear expression sum_i Terms[i] + Offset.
type LinExpr struct {
	Terms  []Term
	Offset float64
}

// Add appends a term (it does not merge duplicates; call Normalize to
// merge).
func (e *LinExpr) Add(v VarID, coef float64) { e.Terms = append(e.Terms, Term{v, coef}) }

// Normalize merges duplicate variables and drops zero coefficients,
// leaving terms sorted by variable. It returns the receiver for chaining.
func (e *LinExpr) Normalize() *LinExpr {
	sort.Slice(e.Terms, func(i, j int) bool { return e.Terms[i].Var < e.Terms[j].Var })
	out := e.Terms[:0]
	for _, t := range e.Terms {
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coef += t.Coef
		} else {
			out = append(out, t)
		}
	}
	dst := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			dst = append(dst, t)
		}
	}
	e.Terms = dst
	return e
}

// Value evaluates the expression for a binary assignment.
func (e *LinExpr) Value(x []bool) float64 {
	v := e.Offset
	for _, t := range e.Terms {
		if x[t.Var] {
			v += t.Coef
		}
	}
	return v
}

// Clone deep-copies the expression.
func (e *LinExpr) Clone() LinExpr {
	return LinExpr{Terms: append([]Term(nil), e.Terms...), Offset: e.Offset}
}

// Sense is the comparison direction of a constraint.
type Sense int

const (
	// Eq constrains the expression to equal the RHS.
	Eq Sense = iota
	// Le constrains the expression to be at most the RHS.
	Le
	// Ge constrains the expression to be at least the RHS.
	Ge
)

// String returns the mathematical symbol of the sense.
func (s Sense) String() string {
	switch s {
	case Eq:
		return "=="
	case Le:
		return "<="
	case Ge:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Constraint is a linear constraint Expr Sense RHS.
type Constraint struct {
	Name  string
	Expr  LinExpr
	Sense Sense
	RHS   float64
}

// Violation returns how far the assignment is from satisfying the
// constraint: 0 when satisfied, otherwise the absolute gap.
func (c *Constraint) Violation(x []bool) float64 {
	v := c.Expr.Value(x)
	switch c.Sense {
	case Eq:
		return math.Abs(v - c.RHS)
	case Le:
		if v > c.RHS {
			return v - c.RHS
		}
	case Ge:
		if v < c.RHS {
			return c.RHS - v
		}
	}
	return 0
}

// QuadTerm is one quadratic monomial q * x_a * x_b.
type QuadTerm struct {
	A, B VarID
	Coef float64
}

// Model is a constrained quadratic model over binary variables.
//
// A Model must not be copied after first use: it caches the evaluator's
// flat CSR layout behind an atomic pointer so concurrent solver workers
// (portfolio restarts, tempering replicas) share one build.
type Model struct {
	names []string

	// Objective pieces.
	objLinear  []Term
	objQuad    []QuadTerm
	objSquares []LinExpr
	objOffset  float64

	constraints []Constraint

	// Cached evaluator layout; nil until the first NewEvaluator and
	// invalidated by every mutation. Reads are lock-free on the hot
	// path; the mutex only serializes the one-time build.
	layoutCache atomic.Pointer[layout]
	layoutMu    sync.Mutex
}

// evalLayout returns the cached flat evaluator layout, building it on
// first use. Safe for concurrent use; mutation methods invalidate it.
func (m *Model) evalLayout() *layout {
	if l := m.layoutCache.Load(); l != nil {
		return l
	}
	m.layoutMu.Lock()
	defer m.layoutMu.Unlock()
	if l := m.layoutCache.Load(); l != nil {
		return l
	}
	l := buildLayout(m)
	m.layoutCache.Store(l)
	return l
}

// invalidateLayout drops the cached evaluator layout after a mutation.
func (m *Model) invalidateLayout() { m.layoutCache.Store(nil) }

// New returns an empty model.
func New() *Model { return &Model{} }

// AddBinary declares a new binary variable and returns its id. Names are
// for diagnostics only and need not be unique.
func (m *Model) AddBinary(name string) VarID {
	m.invalidateLayout()
	m.names = append(m.names, name)
	return VarID(len(m.names) - 1)
}

// NumVars returns the number of declared variables — the logical-qubit
// count of the formulation (Table I of the paper).
func (m *Model) NumVars() int { return len(m.names) }

// VarName returns the diagnostic name of a variable.
func (m *Model) VarName(v VarID) string {
	if int(v) < 0 || int(v) >= len(m.names) {
		return fmt.Sprintf("v%d", int(v))
	}
	return m.names[v]
}

// AddObjectiveLinear adds a linear objective term.
func (m *Model) AddObjectiveLinear(v VarID, coef float64) {
	m.invalidateLayout()
	m.objLinear = append(m.objLinear, Term{v, coef})
}

// AddObjectiveQuad adds a quadratic objective term q * x_a * x_b.
// A diagonal term (a == b) is equivalent to a linear term for binaries.
func (m *Model) AddObjectiveQuad(a, b VarID, coef float64) {
	if a == b {
		m.AddObjectiveLinear(a, coef)
		return
	}
	m.invalidateLayout()
	m.objQuad = append(m.objQuad, QuadTerm{a, b, coef})
}

// AddObjectiveSquared adds (expr)^2 to the objective, keeping the
// structured (sum-of-squares) form.
func (m *Model) AddObjectiveSquared(expr LinExpr) {
	m.invalidateLayout()
	e := expr.Clone()
	e.Normalize()
	m.objSquares = append(m.objSquares, e)
}

// AddObjectiveOffset adds a constant to the objective.
func (m *Model) AddObjectiveOffset(c float64) { m.objOffset += c }

// AddConstraint adds a linear constraint and returns its index.
func (m *Model) AddConstraint(name string, expr LinExpr, sense Sense, rhs float64) int {
	m.invalidateLayout()
	e := expr.Clone()
	e.Normalize()
	m.constraints = append(m.constraints, Constraint{Name: name, Expr: e, Sense: sense, RHS: rhs})
	return len(m.constraints) - 1
}

// Constraints returns the model's constraints (shared storage; callers
// must not mutate).
func (m *Model) Constraints() []Constraint { return m.constraints }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.constraints) }

// CountConstraintSenses returns how many equality and inequality
// constraints the model has — the paper contrasts Q_CQM1 (all
// inequalities) with Q_CQM2 (M equalities + M+1 inequalities).
func (m *Model) CountConstraintSenses() (eq, ineq int) {
	for _, c := range m.constraints {
		if c.Sense == Eq {
			eq++
		} else {
			ineq++
		}
	}
	return eq, ineq
}

// ObjectiveParts exposes the objective's internal structure (shared
// storage; callers must not mutate): linear terms, plain quadratic terms,
// squared linear expressions, and the constant offset. Exact solvers use
// this to compute admissible bounds.
func (m *Model) ObjectiveParts() (linear []Term, quad []QuadTerm, squares []LinExpr, offset float64) {
	return m.objLinear, m.objQuad, m.objSquares, m.objOffset
}

// Objective evaluates the objective (energy) for a binary assignment.
func (m *Model) Objective(x []bool) float64 {
	e := m.objOffset
	for _, t := range m.objLinear {
		if x[t.Var] {
			e += t.Coef
		}
	}
	for _, q := range m.objQuad {
		if x[q.A] && x[q.B] {
			e += q.Coef
		}
	}
	for i := range m.objSquares {
		v := m.objSquares[i].Value(x)
		e += v * v
	}
	return e
}

// Violations returns the per-constraint violation vector.
func (m *Model) Violations(x []bool) []float64 {
	out := make([]float64, len(m.constraints))
	for i := range m.constraints {
		out[i] = m.constraints[i].Violation(x)
	}
	return out
}

// Feasible reports whether every constraint is satisfied within tol.
func (m *Model) Feasible(x []bool, tol float64) bool {
	for i := range m.constraints {
		if m.constraints[i].Violation(x) > tol {
			return false
		}
	}
	return true
}

// TotalViolation returns the sum of constraint violations.
func (m *Model) TotalViolation(x []bool) float64 {
	total := 0.0
	for i := range m.constraints {
		total += m.constraints[i].Violation(x)
	}
	return total
}

// Stats summarises the model's size.
type Stats struct {
	Vars, Constraints, EqConstraints, IneqConstraints int
	LinearTerms, QuadTerms, SquaredExprs              int
}

// Stats returns size statistics for the model.
func (m *Model) Stats() Stats {
	eq, ineq := m.CountConstraintSenses()
	return Stats{
		Vars:            m.NumVars(),
		Constraints:     m.NumConstraints(),
		EqConstraints:   eq,
		IneqConstraints: ineq,
		LinearTerms:     len(m.objLinear),
		QuadTerms:       len(m.objQuad),
		SquaredExprs:    len(m.objSquares),
	}
}

// String renders a short summary of the model shape.
func (m *Model) String() string {
	s := m.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "CQM{vars=%d constraints=%d (eq=%d ineq=%d) lin=%d quad=%d sq=%d}",
		s.Vars, s.Constraints, s.EqConstraints, s.IneqConstraints,
		s.LinearTerms, s.QuadTerms, s.SquaredExprs)
	return b.String()
}

package cqm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func modelsEquivalent(a, b *Model, rng *rand.Rand) bool {
	if a.NumVars() != b.NumVars() || a.NumConstraints() != b.NumConstraints() {
		return false
	}
	n := a.NumVars()
	for trial := 0; trial < 50; trial++ {
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		if !almostEqual(a.Objective(x), b.Objective(x)) {
			return false
		}
		va, vb := a.Violations(x), b.Violations(x)
		for i := range va {
			if !almostEqual(va[i], vb[i]) {
				return false
			}
		}
	}
	return true
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randModel(rng, 7)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEquivalent(m, back, rng) {
		t.Fatal("round-tripped model differs")
	}
	if back.VarName(0) != m.VarName(0) {
		t.Fatal("names lost")
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 1+rng.Intn(9))
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			return false
		}
		back, err := ReadModel(&buf)
		if err != nil {
			return false
		}
		return modelsEquivalent(m, back, rng)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeNamesWithSpaces(t *testing.T) {
	m := New()
	m.AddBinary(`x with "spaces" and quotes`)
	var e LinExpr
	e.Add(0, 1)
	m.AddConstraint(`cap of "everything"`, e, Le, 1)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.VarName(0) != `x with "spaces" and quotes` {
		t.Fatalf("name = %q", back.VarName(0))
	}
	if back.Constraints()[0].Name != `cap of "everything"` {
		t.Fatalf("constraint name = %q", back.Constraints()[0].Name)
	}
}

func TestReadModelRejectsCorruption(t *testing.T) {
	good := func() string {
		rng := rand.New(rand.NewSource(1))
		m := randModel(rng, 4)
		var buf bytes.Buffer
		if err := WriteModel(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := map[string]string{
		"empty":          "",
		"bad header":     "NOPE\n" + good[6:],
		"unknown record": good + "WHAT 1 2 3\n",
		"bad var id":     strings.Replace(good, "VAR 0", "VAR 7", 1),
		"bad obj kind":   good + "OBJ CUBE 1 2\n",
		"short con":      good + "CON LE 1\n",
		"dangling ref":   good + "OBJ LIN 99 1\n",
	}
	for name, data := range cases {
		if _, err := ReadModel(strings.NewReader(data)); err == nil {
			t.Errorf("case %q: corrupted model accepted", name)
		}
	}
}

func TestReadModelSkipsCommentsAndBlanks(t *testing.T) {
	src := "CQM 1\n# a comment\n\nVAR 0 \"a\"\nOBJ LIN 0 2\n"
	m, err := ReadModel(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Objective([]bool{true}); !almostEqual(got, 2) {
		t.Fatalf("objective = %v", got)
	}
}

package cqm

import "fmt"

// Presolve performs bound-based variable fixing, the classical half of the
// hybrid workflow: for each constraint it computes achievable bounds given
// already-fixed variables and fixes any variable whose value is forced.
// The pass iterates to a fixpoint. It returns the fixed assignments, or an
// error if some constraint is proven infeasible.
//
// The annealing solver freezes fixed variables, shrinking the effective
// search space before any "quantum" sampling happens — mirroring the
// classical preprocessing that D-Wave's hybrid solvers run before QPU
// access.
func Presolve(m *Model) (map[VarID]bool, error) {
	fixed := make(map[VarID]bool)
	// Split each constraint into <= and >= halves so one routine handles
	// all senses.
	type half struct {
		name  string
		terms []Term
		off   float64
		rhs   float64 // terms + off <= rhs
	}
	var halves []half
	for ci := range m.constraints {
		c := &m.constraints[ci]
		if c.Sense == Le || c.Sense == Eq {
			halves = append(halves, half{c.Name, c.Expr.Terms, c.Expr.Offset, c.RHS})
		}
		if c.Sense == Ge || c.Sense == Eq {
			neg := make([]Term, len(c.Expr.Terms))
			for i, t := range c.Expr.Terms {
				neg[i] = Term{t.Var, -t.Coef}
			}
			halves = append(halves, half{c.Name, neg, -c.Expr.Offset, -c.RHS})
		}
	}

	changed := true
	for changed {
		changed = false
		for _, h := range halves {
			// Minimum achievable LHS given current fixings.
			lo := h.off
			for _, t := range h.terms {
				if v, ok := fixed[t.Var]; ok {
					if v {
						lo += t.Coef
					}
					continue
				}
				if t.Coef < 0 {
					lo += t.Coef
				}
			}
			if lo > h.rhs+1e-9 {
				return nil, fmt.Errorf("cqm: presolve proves constraint %q infeasible (min %.6g > %.6g)", h.name, lo, h.rhs)
			}
			for _, t := range h.terms {
				if _, ok := fixed[t.Var]; ok {
					continue
				}
				switch {
				case t.Coef > 0 && lo+t.Coef > h.rhs+1e-9:
					// Turning the variable on would break the constraint.
					fixed[t.Var] = false
					changed = true
				case t.Coef < 0 && lo-t.Coef > h.rhs+1e-9:
					// Turning the variable off (losing its negative
					// contribution) would break the constraint.
					fixed[t.Var] = true
					changed = true
				}
			}
		}
	}
	return fixed, nil
}

package cqm

// Ising is a problem in the quantum annealer's native form:
//
//	E(s) = Offset + sum_i H[i] s_i + sum_{i<j} J[{i,j}] s_i s_j
//
// over spins s_i in {-1, +1}. D-Wave hardware minimizes exactly this
// Hamiltonian; the QUBO<->Ising mappings below are the final lowering
// step a real submission pipeline performs (x = (1+s)/2).
type Ising struct {
	// NumVars is the spin count; BaseVars mirrors QUBO.BaseVars.
	NumVars, BaseVars int
	H                 []float64
	J                 map[QPair]float64
	Offset            float64
}

// ToIsing lowers the QUBO to spin variables via x_i = (1 + s_i)/2.
func (q *QUBO) ToIsing() *Ising {
	is := &Ising{
		NumVars:  q.NumVars,
		BaseVars: q.BaseVars,
		H:        make([]float64, q.NumVars),
		J:        make(map[QPair]float64, len(q.Quad)),
		Offset:   q.Offset,
	}
	for i, a := range q.Linear {
		is.Offset += a / 2
		is.H[i] += a / 2
	}
	for p, b := range q.Quad {
		is.Offset += b / 4
		is.H[p.A] += b / 4
		is.H[p.B] += b / 4
		if b != 0 {
			is.J[p] += b / 4
		}
	}
	return is
}

// ToQUBO raises the Ising problem back to binary variables via
// s_i = 2 x_i - 1.
func (is *Ising) ToQUBO() *QUBO {
	q := &QUBO{
		NumVars:  is.NumVars,
		BaseVars: is.BaseVars,
		Linear:   make([]float64, is.NumVars),
		Quad:     make(map[QPair]float64, len(is.J)),
		Offset:   is.Offset,
	}
	for i, h := range is.H {
		q.Offset -= h
		q.Linear[i] += 2 * h
	}
	for p, j := range is.J {
		q.Offset += j
		q.Linear[p.A] -= 2 * j
		q.Linear[p.B] -= 2 * j
		if j != 0 {
			q.Quad[p] += 4 * j
		}
	}
	return q
}

// Energy evaluates the Hamiltonian for a spin assignment (+1 for true,
// -1 for false).
func (is *Ising) Energy(spins []bool) float64 {
	sv := func(b bool) float64 {
		if b {
			return 1
		}
		return -1
	}
	e := is.Offset
	for i, h := range is.H {
		e += h * sv(spins[i])
	}
	for p, j := range is.J {
		e += j * sv(spins[p.A]) * sv(spins[p.B])
	}
	return e
}

package cqm_test

import (
	"fmt"

	"repro/internal/cqm"
)

// A two-variable model: minimize (x0 + x1 - 1)^2 subject to x0 <= 0.
// The optimum sets only x1.
func ExampleModel() {
	m := cqm.New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	var e cqm.LinExpr
	e.Add(a, 1)
	e.Add(b, 1)
	e.Offset = -1
	m.AddObjectiveSquared(e)
	m.AddConstraint("a off", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Le, 0)

	x := []bool{false, true}
	fmt.Printf("objective=%v feasible=%v\n", m.Objective(x), m.Feasible(x, 1e-9))
	// Output:
	// objective=0 feasible=true
}

// Unbalanced penalization folds an inequality into the objective
// without slack qubits: the QUBO keeps the model's variable count.
func ExampleToQUBO() {
	m := cqm.New()
	var sum cqm.LinExpr
	for i := 0; i < 3; i++ {
		v := m.AddBinary("x")
		sum.Add(v, 1)
	}
	m.AddConstraint("cap", sum, cqm.Le, 1)
	opts := cqm.DefaultQUBOOptions()
	opts.Method = cqm.UnbalancedPenalty
	q, _ := cqm.ToQUBO(m, opts)
	fmt.Printf("qubits=%d slacks=%d\n", q.NumVars, q.NumVars-q.BaseVars)
	// Output:
	// qubits=3 slacks=0
}

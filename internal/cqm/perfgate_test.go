package cqm

import (
	"math/rand"
	"testing"
)

// TestPerfGateEvaluatorAllocFree is a CI gate: the per-move evaluator
// kernels — FlipDelta, CommitFlip, Flip — and the read accessors the
// annealers call every sweep must not allocate. The model is the
// paper-shaped LRP instance so every membership kind (linear, quad,
// squared, constraint) is on the measured path.
func TestPerfGateEvaluatorAllocFree(t *testing.T) {
	m := lrpLikeModel(4, 3)
	n := m.NumVars()
	ev := NewEvaluator(m, 2)
	rng := rand.New(rand.NewSource(11))
	state := make([]bool, n)
	for i := range state {
		state[i] = rng.Intn(2) == 0
	}
	ev.Reset(state)

	v := VarID(0)
	if allocs := testing.AllocsPerRun(200, func() {
		v = VarID(rng.Intn(n))
		d := ev.FlipDelta(v)
		ev.CommitFlip(v, d)
		ev.Flip(v)
	}); allocs != 0 {
		t.Errorf("FlipDelta+CommitFlip+Flip allocates %.1f allocs/run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		_ = ev.Energy()
		_ = ev.ObjectiveValue()
		_ = ev.Feasible(1e-6)
		_ = ev.Words()
	}); allocs != 0 {
		t.Errorf("read accessors allocate %.1f allocs/run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(50, func() {
		ev.ScalePenalties(1.0001)
	}); allocs != 0 {
		t.Errorf("ScalePenalties allocates %.1f allocs/run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(50, func() {
		ev.Reset(state)
	}); allocs != 0 {
		t.Errorf("Reset allocates %.1f allocs/run, want 0", allocs)
	}
}

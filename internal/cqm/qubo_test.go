package cqm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// enumerate calls fn with every assignment of n binary variables.
func enumerate(n int, fn func(x []bool)) {
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		fn(x)
	}
}

func TestSlackCoefficients(t *testing.T) {
	for ub := 0; ub <= 40; ub++ {
		coefs := slackCoefficients(ub)
		total := 0
		for _, c := range coefs {
			if c <= 0 {
				t.Fatalf("ub=%d produced non-positive coefficient %d", ub, c)
			}
			total += c
		}
		if total != ub {
			t.Fatalf("ub=%d coefficients sum to %d", ub, total)
		}
		// Every value in [0, ub] must be a subset sum.
		reachable := make(map[int]bool)
		reachable[0] = true
		for _, c := range coefs {
			next := make(map[int]bool, len(reachable)*2)
			for v := range reachable {
				next[v] = true
				next[v+c] = true
			}
			reachable = next
		}
		for v := 0; v <= ub; v++ {
			if !reachable[v] {
				t.Fatalf("ub=%d: value %d not reachable with %v", ub, v, coefs)
			}
		}
	}
}

func TestQUBOEqualityPenaltyExact(t *testing.T) {
	// min (x0 + x1 - 1)^2-style: objective x0, constraint x0+x1 == 1.
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	m.AddObjectiveLinear(a, 1)
	var e LinExpr
	e.Add(a, 1)
	e.Add(b, 1)
	m.AddConstraint("sum", e, Eq, 1)

	q, err := ToQUBO(m, QUBOOptions{Method: SlackPenalty, EqPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars != 2 { // equality adds no slacks
		t.Fatalf("NumVars = %d, want 2", q.NumVars)
	}
	// For feasible assignments QUBO energy equals the objective.
	enumerate(2, func(x []bool) {
		if m.Feasible(x, 1e-9) {
			if got, want := q.Energy(x), m.Objective(x); !almostEqual(got, want) {
				t.Fatalf("feasible %v: qubo=%v obj=%v", x, got, want)
			}
		} else if q.Energy(x) < m.Objective(x)+10-1e-9 {
			t.Fatalf("infeasible %v under-penalized: %v", x, q.Energy(x))
		}
	})
}

func TestQUBOSlackInequalityMinimumIsFeasibleOptimum(t *testing.T) {
	// Objective: -(x0 + x1 + x2) (wants all on); constraint sum <= 2.
	m := New()
	var sum LinExpr
	for i := 0; i < 3; i++ {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, -1)
		sum.Add(v, 1)
	}
	m.AddConstraint("cap", sum, Le, 2)
	q, err := ToQUBO(m, QUBOOptions{Method: SlackPenalty, EqPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars <= 3 {
		t.Fatalf("expected slack variables, NumVars = %d", q.NumVars)
	}
	// Brute-force the QUBO minimum over all variables incl. slacks; its
	// projection on base vars must be a feasible optimum (-2).
	best := 1e18
	var bestX []bool
	enumerate(q.NumVars, func(x []bool) {
		if e := q.Energy(x); e < best {
			best = e
			bestX = append([]bool(nil), x...)
		}
	})
	base := bestX[:3]
	if !m.Feasible(base, 1e-9) {
		t.Fatalf("QUBO minimum %v infeasible for the CQM", base)
	}
	if got := m.Objective(base); !almostEqual(got, -2) {
		t.Fatalf("QUBO minimum objective = %v, want -2", got)
	}
	if !almostEqual(best, -2) {
		t.Fatalf("QUBO minimum energy = %v, want -2", best)
	}
}

func TestQUBOUnbalancedKeepsQubitCount(t *testing.T) {
	m := New()
	var sum LinExpr
	for i := 0; i < 4; i++ {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, -1)
		sum.Add(v, 1)
	}
	m.AddConstraint("cap", sum, Le, 2)
	q, err := ToQUBO(m, QUBOOptions{Method: UnbalancedPenalty, EqPenalty: 10, UnbalancedL1: 1, UnbalancedL2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars != 4 {
		t.Fatalf("unbalanced penalization changed qubit count: %d", q.NumVars)
	}
	// The minimum must still be feasible.
	best := 1e18
	var bestX []bool
	enumerate(4, func(x []bool) {
		if e := q.Energy(x); e < best {
			best = e
			bestX = append([]bool(nil), x...)
		}
	})
	if !m.Feasible(bestX, 1e-9) {
		t.Fatalf("unbalanced QUBO minimum %v infeasible", bestX)
	}
}

func TestQUBOGeConstraint(t *testing.T) {
	// Objective: +sum (wants all off); constraint sum >= 2 forces two on.
	m := New()
	var sum LinExpr
	for i := 0; i < 3; i++ {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, 1)
		sum.Add(v, 1)
	}
	m.AddConstraint("floor", sum, Ge, 2)
	for _, method := range []PenaltyMethod{SlackPenalty, UnbalancedPenalty} {
		q, err := ToQUBO(m, QUBOOptions{Method: method, EqPenalty: 10, UnbalancedL1: 1, UnbalancedL2: 10})
		if err != nil {
			t.Fatal(err)
		}
		best := 1e18
		var bestX []bool
		enumerate(q.NumVars, func(x []bool) {
			if e := q.Energy(x); e < best {
				best = e
				bestX = append([]bool(nil), x...)
			}
		})
		if !m.Feasible(bestX[:3], 1e-9) {
			t.Fatalf("method %d: minimum %v infeasible", method, bestX[:3])
		}
		if got := m.Objective(bestX[:3]); !almostEqual(got, 2) {
			t.Fatalf("method %d: objective %v, want 2", method, got)
		}
	}
}

func TestQUBORejectsBadPenalty(t *testing.T) {
	m := New()
	m.AddBinary("a")
	if _, err := ToQUBO(m, QUBOOptions{EqPenalty: 0}); err == nil {
		t.Fatal("ToQUBO accepted EqPenalty=0")
	}
}

func TestQUBODetectsInfeasibleConstraint(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	m.AddConstraint("impossible", LinExpr{Terms: []Term{{a, 1}}, Offset: 5}, Le, 2)
	if _, err := ToQUBO(m, DefaultQUBOOptions()); err == nil {
		t.Fatal("ToQUBO accepted an infeasible constraint")
	}
}

func TestQUBOToModelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 5)
		q, err := ToQUBO(m, DefaultQUBOOptions())
		if err != nil {
			// Random constraints can be genuinely infeasible; skip.
			return true
		}
		back := q.ToModel()
		if back.NumVars() != q.NumVars {
			return false
		}
		// Energies agree on random assignments.
		for k := 0; k < 20; k++ {
			x := randAssign(rng, q.NumVars)
			if !almostEqual(q.Energy(x), back.Objective(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQUBOObjectivePreservedOnFeasible(t *testing.T) {
	// Property: for any model and any assignment feasible w.r.t. all
	// constraints, the slack-encoded QUBO admits a slack completion with
	// energy equal to the model objective. We verify by brute-forcing
	// the best slack completion.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 4)
		q, err := ToQUBO(m, QUBOOptions{Method: SlackPenalty, EqPenalty: 50})
		if err != nil {
			return true
		}
		slacks := q.NumVars - q.BaseVars
		if slacks > 12 {
			return true
		}
		ok := true
		enumerate(4, func(x []bool) {
			if !m.Feasible(x, 1e-9) {
				return
			}
			best := 1e18
			full := make([]bool, q.NumVars)
			copy(full, x)
			enumerate(slacks, func(s []bool) {
				copy(full[q.BaseVars:], s)
				if e := q.Energy(full); e < best {
					best = e
				}
			})
			if !almostEqual(best, m.Objective(x)) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPresolveFixesForcedVariables(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	// a + b <= 0 forces a = b = 0.
	var e LinExpr
	e.Add(a, 1)
	e.Add(b, 1)
	m.AddConstraint("zero", e, Le, 0)
	// c >= 1 forces c = 1.
	m.AddConstraint("one", LinExpr{Terms: []Term{{c, 1}}}, Ge, 1)
	fixed, err := Presolve(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fixed[a]; !ok || v {
		t.Errorf("a not fixed to false: %v %v", v, ok)
	}
	if v, ok := fixed[b]; !ok || v {
		t.Errorf("b not fixed to false: %v %v", v, ok)
	}
	if v, ok := fixed[c]; !ok || !v {
		t.Errorf("c not fixed to true: %v %v", v, ok)
	}
}

func TestPresolvePropagates(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	// a == 1, and a + b <= 1 then forces b = 0 after fixing a.
	m.AddConstraint("a1", LinExpr{Terms: []Term{{a, 1}}}, Eq, 1)
	var e LinExpr
	e.Add(a, 1)
	e.Add(b, 1)
	m.AddConstraint("cap", e, Le, 1)
	fixed, err := Presolve(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fixed[a]; !ok || !v {
		t.Errorf("a not fixed true")
	}
	if v, ok := fixed[b]; !ok || v {
		t.Errorf("b not fixed false")
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	m.AddConstraint("bad", LinExpr{Terms: []Term{{a, 1}}, Offset: 3}, Le, 1)
	if _, err := Presolve(m); err == nil {
		t.Fatal("Presolve missed infeasibility")
	}
}

func TestPresolveSoundness(t *testing.T) {
	// Property: any fixing returned by presolve is satisfied by every
	// feasible assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng, 6)
		fixed, err := Presolve(m)
		if err != nil {
			// Claimed infeasible: verify no feasible assignment exists.
			feasible := false
			enumerate(6, func(x []bool) {
				if m.Feasible(x, 1e-9) {
					feasible = true
				}
			})
			return !feasible
		}
		ok := true
		enumerate(6, func(x []bool) {
			if !m.Feasible(x, 1e-9) {
				return
			}
			for v, val := range fixed {
				if x[v] != val {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package cqm

import "fmt"

// Evaluator maintains an assignment for a model and supports O(degree)
// energy-delta queries for single-bit flips. It is the hot path of the
// annealing solvers: a flip of variable v touches only the squared
// expressions and constraints containing v.
//
// The penalized energy is
//
//	E(x) = objective(x) + sum_c w_c * pen_c(x)
//
// where pen_c is the squared constraint violation (smooth, so annealing
// can descend into the feasible region) and w_c is a per-constraint
// penalty weight.
//
// An Evaluator is not safe for concurrent use; annealing replicas each own
// one.
type Evaluator struct {
	m *Model
	x []bool

	penalty []float64 // per-constraint penalty weight

	sqVal  []float64 // current value of each squared objective expression
	conVal []float64 // current LHS value of each constraint

	linCoef []float64 // merged linear objective coefficient per variable
	quadAdj [][]Term  // quadratic adjacency: neighbours of each variable
	varSq   [][]ref   // squared-expression memberships per variable
	varCon  [][]ref   // constraint memberships per variable

	objLinear float64 // current linear + offset objective value
	objQuad   float64 // current plain-quadratic objective value
	energy    float64 // current penalized energy
}

type ref struct {
	idx  int
	coef float64
}

// NewEvaluator builds an evaluator with every variable set to false and a
// uniform constraint penalty weight.
func NewEvaluator(m *Model, penalty float64) *Evaluator {
	n := m.NumVars()
	ev := &Evaluator{
		m:       m,
		x:       make([]bool, n),
		penalty: make([]float64, m.NumConstraints()),
		sqVal:   make([]float64, len(m.objSquares)),
		conVal:  make([]float64, m.NumConstraints()),
		linCoef: make([]float64, n),
		quadAdj: make([][]Term, n),
		varSq:   make([][]ref, n),
		varCon:  make([][]ref, n),
	}
	for i := range ev.penalty {
		ev.penalty[i] = penalty
	}
	for _, t := range m.objLinear {
		ev.linCoef[t.Var] += t.Coef
	}
	for _, q := range m.objQuad {
		ev.quadAdj[q.A] = append(ev.quadAdj[q.A], Term{q.B, q.Coef})
		ev.quadAdj[q.B] = append(ev.quadAdj[q.B], Term{q.A, q.Coef})
	}
	for si := range m.objSquares {
		for _, t := range m.objSquares[si].Terms {
			ev.varSq[t.Var] = append(ev.varSq[t.Var], ref{si, t.Coef})
		}
	}
	for ci := range m.constraints {
		for _, t := range m.constraints[ci].Expr.Terms {
			ev.varCon[t.Var] = append(ev.varCon[t.Var], ref{ci, t.Coef})
		}
	}
	ev.Reset(nil)
	return ev
}

// SetPenalty overrides the penalty weight for one constraint.
func (ev *Evaluator) SetPenalty(constraint int, w float64) {
	ev.penalty[constraint] = w
	ev.recomputeEnergy()
}

// ScalePenalties multiplies all penalty weights by factor; annealers use
// this to tighten constraints over time.
func (ev *Evaluator) ScalePenalties(factor float64) {
	for i := range ev.penalty {
		ev.penalty[i] *= factor
	}
	ev.recomputeEnergy()
}

// Reset sets the assignment (nil means all-false) and recomputes all
// cached values from scratch.
func (ev *Evaluator) Reset(x []bool) {
	n := ev.m.NumVars()
	if x == nil {
		for i := range ev.x {
			ev.x[i] = false
		}
	} else {
		if len(x) != n {
			panic(fmt.Sprintf("cqm: Reset with %d values for %d variables", len(x), n))
		}
		copy(ev.x, x)
	}
	ev.objLinear = ev.m.objOffset
	for _, t := range ev.m.objLinear {
		if ev.x[t.Var] {
			ev.objLinear += t.Coef
		}
	}
	ev.objQuad = 0
	for _, q := range ev.m.objQuad {
		if ev.x[q.A] && ev.x[q.B] {
			ev.objQuad += q.Coef
		}
	}
	for si := range ev.m.objSquares {
		ev.sqVal[si] = ev.m.objSquares[si].Value(ev.x)
	}
	for ci := range ev.m.constraints {
		ev.conVal[ci] = ev.m.constraints[ci].Expr.Value(ev.x)
	}
	ev.recomputeEnergy()
}

func (ev *Evaluator) recomputeEnergy() {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	for ci, lhs := range ev.conVal {
		e += ev.penalty[ci] * ev.penaltyTerm(ci, lhs)
	}
	ev.energy = e
}

// penaltyTerm returns the squared violation of constraint ci at LHS value
// lhs (unweighted).
func (ev *Evaluator) penaltyTerm(ci int, lhs float64) float64 {
	c := &ev.m.constraints[ci]
	var gap float64
	switch c.Sense {
	case Eq:
		gap = lhs - c.RHS
	case Le:
		if lhs > c.RHS {
			gap = lhs - c.RHS
		}
	case Ge:
		if lhs < c.RHS {
			gap = c.RHS - lhs
		}
	}
	return gap * gap
}

// Energy returns the current penalized energy.
func (ev *Evaluator) Energy() float64 { return ev.energy }

// ObjectiveValue returns the unpenalized objective at the current
// assignment.
func (ev *Evaluator) ObjectiveValue() float64 {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	return e
}

// PenaltyValue returns the weighted constraint penalty at the current
// assignment.
func (ev *Evaluator) PenaltyValue() float64 { return ev.energy - ev.ObjectiveValue() }

// Feasible reports whether the current assignment satisfies every
// constraint within tol.
func (ev *Evaluator) Feasible(tol float64) bool {
	for ci, lhs := range ev.conVal {
		c := &ev.m.constraints[ci]
		var gap float64
		switch c.Sense {
		case Eq:
			gap = lhs - c.RHS
			if gap < 0 {
				gap = -gap
			}
		case Le:
			gap = lhs - c.RHS
		case Ge:
			gap = c.RHS - lhs
		}
		if gap > tol {
			return false
		}
	}
	return true
}

// Get returns the current value of variable v.
func (ev *Evaluator) Get(v VarID) bool { return ev.x[v] }

// Assignment returns a copy of the current assignment.
func (ev *Evaluator) Assignment() []bool { return append([]bool(nil), ev.x...) }

// FlipDelta returns the penalized-energy change that flipping variable v
// would cause, without changing state. Cost is O(degree of v).
func (ev *Evaluator) FlipDelta(v VarID) float64 {
	d := 1.0
	if ev.x[v] {
		d = -1.0
	}
	delta := d * ev.linCoef[v]
	for _, t := range ev.quadAdj[v] {
		if ev.x[t.Var] {
			delta += d * t.Coef
		}
	}
	for _, r := range ev.varSq[v] {
		old := ev.sqVal[r.idx]
		nv := old + d*r.coef
		delta += nv*nv - old*old
	}
	for _, r := range ev.varCon[v] {
		old := ev.conVal[r.idx]
		nv := old + d*r.coef
		delta += ev.penalty[r.idx] * (ev.penaltyTerm(r.idx, nv) - ev.penaltyTerm(r.idx, old))
	}
	return delta
}

// Flip commits a flip of variable v, updating all cached values in
// O(degree of v), and returns the energy change.
func (ev *Evaluator) Flip(v VarID) float64 {
	d := 1.0
	if ev.x[v] {
		d = -1.0
	}
	delta := d * ev.linCoef[v]
	ev.objLinear += d * ev.linCoef[v]
	for _, t := range ev.quadAdj[v] {
		if ev.x[t.Var] {
			delta += d * t.Coef
			ev.objQuad += d * t.Coef
		}
	}
	for _, r := range ev.varSq[v] {
		old := ev.sqVal[r.idx]
		nv := old + d*r.coef
		ev.sqVal[r.idx] = nv
		delta += nv*nv - old*old
	}
	for _, r := range ev.varCon[v] {
		old := ev.conVal[r.idx]
		nv := old + d*r.coef
		ev.conVal[r.idx] = nv
		delta += ev.penalty[r.idx] * (ev.penaltyTerm(r.idx, nv) - ev.penaltyTerm(r.idx, old))
	}
	ev.x[v] = !ev.x[v]
	ev.energy += delta
	return delta
}

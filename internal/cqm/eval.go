package cqm

import (
	"fmt"
	"math"

	"repro/internal/bits"
)

// layout is the immutable, cache-packed view of a model that the hot
// loop walks: every slice-of-slices adjacency of the old evaluator is
// flattened into CSR-style arrays (one offset index plus flat term
// arrays), so a flip of variable v reads three contiguous ranges
// instead of chasing per-variable slice headers across the heap.
//
// A layout is built once per model and shared by every evaluator on
// it (annealing restarts, tempering replicas, portfolio workers); the
// model caches it and invalidates on mutation.
type layout struct {
	n int

	// linCoef is the merged linear objective coefficient per variable.
	linCoef []float64

	// Quadratic adjacency: neighbours of v are quadVar/quadCoef in
	// [quadOff[v], quadOff[v+1]).
	quadOff  []int32
	quadVar  []int32
	quadCoef []float64

	// Squared-expression memberships of v: sqIdx/sqCoef in
	// [sqOff[v], sqOff[v+1]).
	sqOff  []int32
	sqIdx  []int32
	sqCoef []float64

	// Constraint memberships of v: conIdx/conCoef in
	// [conOff[v], conOff[v+1]).
	conOff  []int32
	conIdx  []int32
	conCoef []float64

	// Per-constraint feasible band [lo, hi]: Eq pins lo == hi == RHS,
	// Le leaves lo at -Inf, Ge leaves hi at +Inf. Encoding the sense as
	// a band keeps the penalty kernel branch-lean: the violation gap is
	// max(0, lhs-hi) + max(0, lo-lhs) for every sense.
	conLo []float64
	conHi []float64
}

const maxLayoutTerms = math.MaxInt32

func buildLayout(m *Model) *layout {
	n := m.NumVars()
	if n > maxLayoutTerms {
		panic(fmt.Sprintf("cqm: %d variables exceed the evaluator's int32 layout limit", n))
	}
	lay := &layout{
		n:       n,
		linCoef: make([]float64, n),
		quadOff: make([]int32, n+1),
		sqOff:   make([]int32, n+1),
		conOff:  make([]int32, n+1),
		conLo:   make([]float64, len(m.constraints)),
		conHi:   make([]float64, len(m.constraints)),
	}
	for _, t := range m.objLinear {
		lay.linCoef[t.Var] += t.Coef
	}

	// Counting-sort each adjacency into CSR form. Iteration order is
	// the old evaluator's append order, so per-variable term order — and
	// with it every float accumulation order downstream — is preserved
	// exactly.
	counts := make([]int32, n)
	for _, q := range m.objQuad {
		counts[q.A]++
		counts[q.B]++
	}
	total := fillOffsets(lay.quadOff, counts)
	lay.quadVar = make([]int32, total)
	lay.quadCoef = make([]float64, total)
	cursor := append([]int32(nil), lay.quadOff[:n]...)
	for _, q := range m.objQuad {
		i := cursor[q.A]
		cursor[q.A]++
		lay.quadVar[i] = int32(q.B)
		lay.quadCoef[i] = q.Coef
		i = cursor[q.B]
		cursor[q.B]++
		lay.quadVar[i] = int32(q.A)
		lay.quadCoef[i] = q.Coef
	}

	for i := range counts {
		counts[i] = 0
	}
	for si := range m.objSquares {
		for _, t := range m.objSquares[si].Terms {
			counts[t.Var]++
		}
	}
	total = fillOffsets(lay.sqOff, counts)
	lay.sqIdx = make([]int32, total)
	lay.sqCoef = make([]float64, total)
	copy(cursor, lay.sqOff[:n])
	for si := range m.objSquares {
		for _, t := range m.objSquares[si].Terms {
			i := cursor[t.Var]
			cursor[t.Var]++
			lay.sqIdx[i] = int32(si)
			lay.sqCoef[i] = t.Coef
		}
	}

	for i := range counts {
		counts[i] = 0
	}
	for ci := range m.constraints {
		for _, t := range m.constraints[ci].Expr.Terms {
			counts[t.Var]++
		}
	}
	total = fillOffsets(lay.conOff, counts)
	lay.conIdx = make([]int32, total)
	lay.conCoef = make([]float64, total)
	copy(cursor, lay.conOff[:n])
	for ci := range m.constraints {
		for _, t := range m.constraints[ci].Expr.Terms {
			i := cursor[t.Var]
			cursor[t.Var]++
			lay.conIdx[i] = int32(ci)
			lay.conCoef[i] = t.Coef
		}
	}

	for ci := range m.constraints {
		c := &m.constraints[ci]
		switch c.Sense {
		case Eq:
			lay.conLo[ci], lay.conHi[ci] = c.RHS, c.RHS
		case Le:
			lay.conLo[ci], lay.conHi[ci] = math.Inf(-1), c.RHS
		case Ge:
			lay.conLo[ci], lay.conHi[ci] = c.RHS, math.Inf(1)
		}
	}
	return lay
}

// fillOffsets turns per-variable counts into CSR offsets (off has
// len(counts)+1 entries) and returns the total term count.
func fillOffsets(off []int32, counts []int32) int {
	var total int64
	for i, c := range counts {
		off[i] = int32(total)
		total += int64(c)
	}
	if total > maxLayoutTerms {
		panic(fmt.Sprintf("cqm: %d terms exceed the evaluator's int32 layout limit", total))
	}
	off[len(counts)] = int32(total)
	return int(total)
}

// bandGap returns the constraint violation gap of LHS value lhs against
// the feasible band [lo, hi]: 0 inside the band, the distance to the
// nearest bound outside it. Exactly one of the two max terms can be
// positive, so the value matches the old per-sense switch bit for bit.
func bandGap(lhs, lo, hi float64) float64 {
	over := lhs - hi
	if over < 0 {
		over = 0
	}
	under := lo - lhs
	if under < 0 {
		under = 0
	}
	return over + under
}

// Evaluator maintains an assignment for a model and supports O(degree)
// energy-delta queries for single-bit flips. It is the hot path of the
// annealing solvers: a flip of variable v touches only the squared
// expressions and constraints containing v, found through the model's
// flat CSR layout; the assignment itself is a packed uint64 bitset.
//
// The penalized energy is
//
//	E(x) = objective(x) + sum_c w_c * pen_c(x)
//
// where pen_c is the squared constraint violation (smooth, so annealing
// can descend into the feasible region) and w_c is a per-constraint
// penalty weight.
//
// An Evaluator is not safe for concurrent use; annealing replicas each own
// one. The immutable layout is shared between evaluators of one model.
type Evaluator struct {
	m   *Model
	lay *layout
	x   bits.Set

	penalty []float64 // per-constraint penalty weight

	sqVal  []float64 // current value of each squared objective expression
	conVal []float64 // current LHS value of each constraint

	objLinear float64 // current linear + offset objective value
	objQuad   float64 // current plain-quadratic objective value
	energy    float64 // current penalized energy
}

// NewEvaluator builds an evaluator with every variable set to false and a
// uniform constraint penalty weight. The flat adjacency layout is cached
// on the model, so constructing additional evaluators (annealing
// restarts, tempering replicas) costs only the mutable state.
func NewEvaluator(m *Model, penalty float64) *Evaluator {
	n := m.NumVars()
	ev := &Evaluator{
		m:       m,
		lay:     m.evalLayout(),
		x:       bits.New(n),
		penalty: make([]float64, m.NumConstraints()),
		sqVal:   make([]float64, len(m.objSquares)),
		conVal:  make([]float64, m.NumConstraints()),
	}
	for i := range ev.penalty {
		ev.penalty[i] = penalty
	}
	ev.Reset(nil)
	return ev
}

// Model returns the model this evaluator is bound to.
func (ev *Evaluator) Model() *Model { return ev.m }

// LayoutCurrent reports whether the evaluator's flat layout is still the
// model's current one; mutating the model invalidates it. Solvers that
// pool evaluators across runs check this before reuse and rebuild when
// the model changed underneath them.
func (ev *Evaluator) LayoutCurrent() bool { return ev.lay == ev.m.evalLayout() }

// SetPenalty overrides the penalty weight for one constraint.
func (ev *Evaluator) SetPenalty(constraint int, w float64) {
	ev.penalty[constraint] = w
	ev.recomputeEnergy()
}

// SetAllPenalties resets every constraint to a uniform penalty weight;
// pooled evaluators use it to restore the starting weights between
// annealing restarts without rebuilding any state.
func (ev *Evaluator) SetAllPenalties(w float64) {
	for i := range ev.penalty {
		ev.penalty[i] = w
	}
	ev.recomputeEnergy()
}

// ScalePenalties multiplies all penalty weights by factor; annealers use
// this to tighten constraints over time.
func (ev *Evaluator) ScalePenalties(factor float64) {
	for i := range ev.penalty {
		ev.penalty[i] *= factor
	}
	ev.recomputeEnergy()
}

// Reset sets the assignment (nil means all-false) and recomputes all
// cached values from scratch.
func (ev *Evaluator) Reset(x []bool) {
	n := ev.m.NumVars()
	if x == nil {
		ev.x.Clear()
	} else {
		if len(x) != n {
			panic(fmt.Sprintf("cqm: Reset with %d values for %d variables", len(x), n))
		}
		ev.x.PackBools(x)
	}
	ev.refresh()
}

// ResetBits sets the assignment from a packed bitset (which must cover
// the model's variables) and recomputes all cached values from scratch.
func (ev *Evaluator) ResetBits(s bits.Set) {
	if len(s) != len(ev.x) {
		panic(fmt.Sprintf("cqm: ResetBits with %d words for %d", len(s), len(ev.x)))
	}
	ev.x.CopyFrom(s)
	ev.refresh()
}

// refresh recomputes every cached value from the packed assignment.
// Accumulation order matches the original slice-walking evaluator term
// for term, so the cached floats are bit-identical to a fresh build.
func (ev *Evaluator) refresh() {
	ev.objLinear = ev.m.objOffset
	for _, t := range ev.m.objLinear {
		if ev.x.Get(int(t.Var)) {
			ev.objLinear += t.Coef
		}
	}
	ev.objQuad = 0
	for _, q := range ev.m.objQuad {
		if ev.x.Get(int(q.A)) && ev.x.Get(int(q.B)) {
			ev.objQuad += q.Coef
		}
	}
	for si := range ev.m.objSquares {
		e := &ev.m.objSquares[si]
		v := e.Offset
		for _, t := range e.Terms {
			if ev.x.Get(int(t.Var)) {
				v += t.Coef
			}
		}
		ev.sqVal[si] = v
	}
	for ci := range ev.m.constraints {
		e := &ev.m.constraints[ci].Expr
		v := e.Offset
		for _, t := range e.Terms {
			if ev.x.Get(int(t.Var)) {
				v += t.Coef
			}
		}
		ev.conVal[ci] = v
	}
	ev.recomputeEnergy()
}

func (ev *Evaluator) recomputeEnergy() {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	lo, hi := ev.lay.conLo, ev.lay.conHi
	for ci, lhs := range ev.conVal {
		gap := bandGap(lhs, lo[ci], hi[ci])
		e += ev.penalty[ci] * (gap * gap)
	}
	ev.energy = e
}

// Energy returns the current penalized energy.
func (ev *Evaluator) Energy() float64 { return ev.energy }

// ObjectiveValue returns the unpenalized objective at the current
// assignment.
func (ev *Evaluator) ObjectiveValue() float64 {
	e := ev.objLinear + ev.objQuad
	for _, v := range ev.sqVal {
		e += v * v
	}
	return e
}

// PenaltyValue returns the weighted constraint penalty at the current
// assignment.
func (ev *Evaluator) PenaltyValue() float64 { return ev.energy - ev.ObjectiveValue() }

// Feasible reports whether the current assignment satisfies every
// constraint within tol.
func (ev *Evaluator) Feasible(tol float64) bool {
	lo, hi := ev.lay.conLo, ev.lay.conHi
	for ci, lhs := range ev.conVal {
		if bandGap(lhs, lo[ci], hi[ci]) > tol {
			return false
		}
	}
	return true
}

// Get returns the current value of variable v.
func (ev *Evaluator) Get(v VarID) bool { return ev.x.Get(int(v)) }

// Words returns the packed assignment as a read-only view; callers
// snapshot it with bits.Set.CopyFrom instead of allocating a []bool.
func (ev *Evaluator) Words() bits.Set { return ev.x }

// Assignment returns a copy of the current assignment.
func (ev *Evaluator) Assignment() []bool { return ev.x.ToBools(ev.lay.n) }

// AppendAssignment appends the current assignment to dst and returns it.
func (ev *Evaluator) AppendAssignment(dst []bool) []bool {
	return ev.x.AppendBools(dst, ev.lay.n)
}

// FlipDelta returns the penalized-energy change that flipping variable v
// would cause, without changing state. Cost is O(degree of v).
func (ev *Evaluator) FlipDelta(v VarID) float64 {
	lay := ev.lay
	x := ev.x
	d := 1.0
	if x.Get(int(v)) {
		d = -1.0
	}
	delta := d * lay.linCoef[v]
	for i, end := lay.quadOff[v], lay.quadOff[v+1]; i < end; i++ {
		if x.Get(int(lay.quadVar[i])) {
			delta += d * lay.quadCoef[i]
		}
	}
	for i, end := lay.sqOff[v], lay.sqOff[v+1]; i < end; i++ {
		old := ev.sqVal[lay.sqIdx[i]]
		nv := old + d*lay.sqCoef[i]
		delta += nv*nv - old*old
	}
	for i, end := lay.conOff[v], lay.conOff[v+1]; i < end; i++ {
		ci := lay.conIdx[i]
		old := ev.conVal[ci]
		nv := old + d*lay.conCoef[i]
		lo, hi := lay.conLo[ci], lay.conHi[ci]
		ng := bandGap(nv, lo, hi)
		og := bandGap(old, lo, hi)
		delta += ev.penalty[ci] * (ng*ng - og*og)
	}
	return delta
}

// CommitFlip commits a flip of variable v whose energy delta was just
// computed by FlipDelta (with no state change in between). It updates
// the cached expression values without re-deriving the penalty terms,
// so an accepted move costs one full delta scan plus one cheap update
// scan instead of two full scans.
func (ev *Evaluator) CommitFlip(v VarID, delta float64) {
	lay := ev.lay
	x := ev.x
	d := 1.0
	if x.Get(int(v)) {
		d = -1.0
	}
	ev.objLinear += d * lay.linCoef[v]
	for i, end := lay.quadOff[v], lay.quadOff[v+1]; i < end; i++ {
		if x.Get(int(lay.quadVar[i])) {
			ev.objQuad += d * lay.quadCoef[i]
		}
	}
	for i, end := lay.sqOff[v], lay.sqOff[v+1]; i < end; i++ {
		si := lay.sqIdx[i]
		ev.sqVal[si] += d * lay.sqCoef[i]
	}
	for i, end := lay.conOff[v], lay.conOff[v+1]; i < end; i++ {
		ci := lay.conIdx[i]
		ev.conVal[ci] += d * lay.conCoef[i]
	}
	ev.x.Flip(int(v))
	ev.energy += delta
}

// Flip commits a flip of variable v, updating all cached values in
// O(degree of v), and returns the energy change.
func (ev *Evaluator) Flip(v VarID) float64 {
	delta := ev.FlipDelta(v)
	ev.CommitFlip(v, delta)
	return delta
}

package cqm

import (
	"math/rand"
	"testing"
)

// lrpLikeModel builds a model with the paper's structure: m squared
// expressions of ~m*nc terms each, conservation constraints, and a
// global cap — the shape the evaluator must flip quickly.
func lrpLikeModel(m, nc int) *Model {
	mod := New()
	vars := make([][]VarID, m)
	for i := range vars {
		vars[i] = make([]VarID, m*nc)
		for k := range vars[i] {
			vars[i][k] = mod.AddBinary("x")
		}
	}
	var cap LinExpr
	for i := 0; i < m; i++ {
		var sq LinExpr
		for k, v := range vars[i] {
			sq.Add(v, float64(1+k%nc))
			cap.Add(v, 1)
		}
		sq.Offset = -float64(m * nc)
		mod.AddObjectiveSquared(sq)
		mod.AddConstraint("cons", sq, Le, 10)
	}
	mod.AddConstraint("cap", cap, Le, float64(m*nc))
	return mod
}

func BenchmarkEvaluatorFlip(b *testing.B) {
	mod := lrpLikeModel(16, 7)
	ev := NewEvaluator(mod, 5)
	rng := rand.New(rand.NewSource(1))
	n := mod.NumVars()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Flip(VarID(rng.Intn(n)))
	}
}

func BenchmarkEvaluatorFlipDelta(b *testing.B) {
	mod := lrpLikeModel(16, 7)
	ev := NewEvaluator(mod, 5)
	rng := rand.New(rand.NewSource(1))
	n := mod.NumVars()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.FlipDelta(VarID(rng.Intn(n)))
	}
}

func BenchmarkEvaluatorReset(b *testing.B) {
	mod := lrpLikeModel(16, 7)
	ev := NewEvaluator(mod, 5)
	x := make([]bool, mod.NumVars())
	for i := range x {
		x[i] = i%3 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset(x)
	}
}

func BenchmarkObjectiveFromScratch(b *testing.B) {
	mod := lrpLikeModel(16, 7)
	x := make([]bool, mod.NumVars())
	for i := range x {
		x[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Objective(x)
	}
}

func BenchmarkToQUBOSlack(b *testing.B) {
	mod := lrpLikeModel(8, 7)
	opts := DefaultQUBOOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ToQUBO(mod, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPresolve(b *testing.B) {
	mod := lrpLikeModel(16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Presolve(mod); err != nil {
			b.Fatal(err)
		}
	}
}

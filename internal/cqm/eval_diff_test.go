package cqm

import (
	"math"
	"math/rand"
	"testing"
)

// scratchEnergy recomputes the penalized energy from nothing but the
// model and the raw assignment — no incremental caches, no CSR layout —
// exactly the quantity the flat evaluator claims to maintain.
func scratchEnergy(m *Model, x []bool, penalty []float64) float64 {
	e := m.Objective(x)
	cs := m.Constraints()
	for ci := range cs {
		gap := cs[ci].Violation(x)
		e += penalty[ci] * gap * gap
	}
	return e
}

// randomModel builds a random constrained model exercising every term
// kind: linear, plain quadratic, squared expressions (with duplicate
// variables, zero coefficients and offsets), and all three constraint
// senses. Coefficients mix integers and fractions so both the exact and
// the tolerance paths are covered.
func randomModel(rng *rand.Rand) *Model {
	m := New()
	n := 1 + rng.Intn(24)
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = m.AddBinary("x")
	}
	coef := func() float64 {
		c := float64(rng.Intn(11) - 5)
		if rng.Intn(4) == 0 {
			c += 0.25 * float64(rng.Intn(4))
		}
		return c
	}
	for k := rng.Intn(2 * n); k > 0; k-- {
		m.AddObjectiveLinear(vars[rng.Intn(n)], coef())
	}
	for k := rng.Intn(2 * n); k > 0; k-- {
		m.AddObjectiveQuad(vars[rng.Intn(n)], vars[rng.Intn(n)], coef())
	}
	for k := rng.Intn(4); k > 0; k-- {
		var e LinExpr
		for t := 1 + rng.Intn(n); t > 0; t-- {
			e.Add(vars[rng.Intn(n)], coef())
		}
		e.Offset = coef()
		m.AddObjectiveSquared(e)
	}
	m.AddObjectiveOffset(coef())
	for k := rng.Intn(4); k > 0; k-- {
		var e LinExpr
		for t := 1 + rng.Intn(n); t > 0; t-- {
			e.Add(vars[rng.Intn(n)], coef())
		}
		m.AddConstraint("c", e, Sense(rng.Intn(3)), coef())
	}
	return m
}

// checkAgainstScratch drives one evaluator through a random flip
// sequence, comparing FlipDelta, Flip, CommitFlip, Energy, Feasible and
// ObjectiveValue against from-scratch recomputation at every step.
func checkAgainstScratch(t *testing.T, m *Model, rng *rand.Rand, steps int) {
	t.Helper()
	n := m.NumVars()
	penalty := 0.5 + float64(rng.Intn(5))
	ev := NewEvaluator(m, penalty)
	weights := make([]float64, m.NumConstraints())
	for i := range weights {
		weights[i] = penalty
	}

	x := make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 0
	}
	ev.Reset(x)

	// Tolerance scales with the energy magnitude: incremental updates
	// and scratch recomputation sum the same floats in different orders.
	tolFor := func(e float64) float64 { return 1e-9 * (1 + math.Abs(e)) }

	for step := 0; step < steps; step++ {
		if want, got := scratchEnergy(m, x, weights), ev.Energy(); math.Abs(want-got) > tolFor(want) {
			t.Fatalf("step %d: Energy = %g, scratch = %g", step, got, want)
		}
		if want, got := m.Objective(x), ev.ObjectiveValue(); math.Abs(want-got) > tolFor(want) {
			t.Fatalf("step %d: ObjectiveValue = %g, scratch = %g", step, got, want)
		}
		if want, got := m.Feasible(x, 1e-6), ev.Feasible(1e-6); want != got {
			t.Fatalf("step %d: Feasible = %v, scratch = %v", step, got, want)
		}

		v := VarID(rng.Intn(n))
		before := scratchEnergy(m, x, weights)
		x[v] = !x[v]
		after := scratchEnergy(m, x, weights)
		wantDelta := after - before

		delta := ev.FlipDelta(v)
		if math.Abs(delta-wantDelta) > tolFor(before) {
			t.Fatalf("step %d: FlipDelta(%d) = %g, scratch diff = %g", step, v, delta, wantDelta)
		}

		// Exercise all three mutation paths.
		switch step % 3 {
		case 0:
			ev.CommitFlip(v, delta)
		case 1:
			if got := ev.Flip(v); got != delta {
				t.Fatalf("step %d: Flip = %g, FlipDelta = %g", step, got, delta)
			}
		case 2:
			// Reject the speculative delta, then commit via Reset to
			// prove cold rebuilds agree with the incremental path.
			ev.Reset(x)
		}
		if ev.Get(v) != x[v] {
			t.Fatalf("step %d: Get(%d) = %v after flip, want %v", step, v, ev.Get(v), x[v])
		}

		if step%7 == 0 {
			f := 1 + float64(rng.Intn(3))
			ev.ScalePenalties(f)
			for i := range weights {
				weights[i] *= f
			}
		}
	}

	// The decoded assignment must match the reference exactly.
	got := ev.Assignment()
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("Assignment()[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestEvaluatorMatchesScratchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng)
		checkAgainstScratch(t, m, rng, 120)
	}
}

func TestEvaluatorLayoutCacheInvalidation(t *testing.T) {
	m := New()
	a := m.AddBinary("a")
	m.AddObjectiveLinear(a, 2)
	ev := NewEvaluator(m, 1)
	if d := ev.FlipDelta(a); d != 2 {
		t.Fatalf("FlipDelta = %v, want 2", d)
	}
	// Mutate the model: a fresh evaluator must see the new terms even
	// though the layout was cached for the first one.
	b := m.AddBinary("b")
	m.AddObjectiveLinear(b, 5)
	ev2 := NewEvaluator(m, 1)
	if d := ev2.FlipDelta(b); d != 5 {
		t.Fatalf("post-mutation FlipDelta = %v, want 5", d)
	}
}

// FuzzEvaluator fuzzes the differential property: build a model and a
// flip sequence from the input bytes and require the flat-layout
// incremental evaluator to match from-scratch recomputation.
func FuzzEvaluator(f *testing.F) {
	f.Add(int64(1), uint(8))
	f.Add(int64(42), uint(200))
	f.Add(int64(-3), uint(1))
	f.Fuzz(func(t *testing.T, seed int64, steps uint) {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		checkAgainstScratch(t, m, rng, int(steps%256))
	})
}

package cqm

import (
	"fmt"
	"math"
)

// QUBO is a quadratic unconstrained binary optimization problem
// E(x) = Offset + sum_i Linear[i] x_i + sum_{i<j} Quad[{i,j}] x_i x_j.
//
// The paper notes (Section IV, citing Glover et al.) that a CQM can be
// converted to a QUBO by folding constraints into the objective with
// penalty coefficients, and that inequality constraints can avoid slack
// qubits via unbalanced penalization (Montañez-Barrera et al.). Both
// conversions are implemented here; they are exercised by the A2 ablation
// benchmark.
type QUBO struct {
	// NumVars is the total variable count, including any slack variables
	// appended by the conversion.
	NumVars int
	// BaseVars is the number of variables of the originating model;
	// variables [BaseVars, NumVars) are slacks.
	BaseVars int
	Linear   []float64
	Quad     map[QPair]float64
	Offset   float64
}

// QPair is an unordered variable pair with A < B.
type QPair struct{ A, B VarID }

func makePair(a, b VarID) QPair {
	if a > b {
		a, b = b, a
	}
	return QPair{a, b}
}

// PenaltyMethod selects how inequality constraints are encoded.
type PenaltyMethod int

const (
	// SlackPenalty introduces binary slack variables and a squared
	// equality penalty. It is exact but costs extra qubits.
	SlackPenalty PenaltyMethod = iota
	// UnbalancedPenalty uses the slack-free unbalanced penalization
	// -l1*h + l2*h^2 for h >= 0; it keeps the qubit count unchanged but
	// is approximate near the constraint boundary.
	UnbalancedPenalty
)

// QUBOOptions controls the CQM -> QUBO conversion.
type QUBOOptions struct {
	Method PenaltyMethod
	// EqPenalty is the weight for equality constraints (and for the
	// squared part of slack-encoded inequalities). Must be > 0.
	EqPenalty float64
	// Linear and Quadratic weights of the unbalanced penalization
	// (lambda1, lambda2). Ignored by SlackPenalty.
	UnbalancedL1, UnbalancedL2 float64
}

// DefaultQUBOOptions returns conversion options that work well for the
// LRP models in this repository.
func DefaultQUBOOptions() QUBOOptions {
	return QUBOOptions{
		Method:       SlackPenalty,
		EqPenalty:    10,
		UnbalancedL1: 1,
		UnbalancedL2: 10,
	}
}

func (q *QUBO) addLinearTerm(v VarID, c float64) {
	if c != 0 {
		q.Linear[v] += c
	}
}

func (q *QUBO) addQuadTerm(a, b VarID, c float64) {
	if c == 0 {
		return
	}
	if a == b {
		q.addLinearTerm(a, c)
		return
	}
	q.Quad[makePair(a, b)] += c
}

// addScaledLinear adds w * (expr) to the QUBO.
func (q *QUBO) addScaledLinear(e LinExpr, w float64) {
	q.Offset += w * e.Offset
	for _, t := range e.Terms {
		q.addLinearTerm(t.Var, w*t.Coef)
	}
}

// addSquare adds w * (expr)^2 to the QUBO, using x^2 = x for binaries.
func (q *QUBO) addSquare(e LinExpr, w float64) {
	q.Offset += w * e.Offset * e.Offset
	for i, ti := range e.Terms {
		q.addLinearTerm(ti.Var, w*(ti.Coef*ti.Coef+2*e.Offset*ti.Coef))
		for _, tj := range e.Terms[i+1:] {
			q.addQuadTerm(ti.Var, tj.Var, 2*w*ti.Coef*tj.Coef)
		}
	}
}

// exprBounds returns the minimum and maximum value a linear expression can
// take over binary assignments.
func exprBounds(e LinExpr) (lo, hi float64) {
	lo, hi = e.Offset, e.Offset
	for _, t := range e.Terms {
		if t.Coef < 0 {
			lo += t.Coef
		} else {
			hi += t.Coef
		}
	}
	return lo, hi
}

// slackCoefficients returns integer coefficients c_1..c_k such that
// subset sums of {c_i} cover every integer in [0, ub]; this is the
// standard binary expansion with an adjusted top coefficient (the same
// trick the paper's task encoding uses).
func slackCoefficients(ub int) []int {
	if ub <= 0 {
		return nil
	}
	var coefs []int
	c := 1
	for c*2-1 <= ub {
		coefs = append(coefs, c)
		c *= 2
	}
	if rest := ub - (c - 1); rest > 0 {
		coefs = append(coefs, rest)
	}
	return coefs
}

// ToQUBO converts the model into a QUBO according to opts. Only integral
// constraint data is supported for slack encoding: a Le/Ge constraint
// whose slack range is fractional is rounded up (conservative).
func ToQUBO(m *Model, opts QUBOOptions) (*QUBO, error) {
	if opts.EqPenalty <= 0 {
		return nil, fmt.Errorf("cqm: EqPenalty must be positive, got %v", opts.EqPenalty)
	}
	n := m.NumVars()
	q := &QUBO{
		NumVars:  n,
		BaseVars: n,
		Linear:   make([]float64, n),
		Quad:     make(map[QPair]float64),
		Offset:   m.objOffset,
	}
	for _, t := range m.objLinear {
		q.addLinearTerm(t.Var, t.Coef)
	}
	for _, qt := range m.objQuad {
		q.addQuadTerm(qt.A, qt.B, qt.Coef)
	}
	for i := range m.objSquares {
		q.addSquare(m.objSquares[i], 1)
	}

	newSlack := func() VarID {
		q.NumVars++
		q.Linear = append(q.Linear, 0)
		return VarID(q.NumVars - 1)
	}

	for ci := range m.constraints {
		c := &m.constraints[ci]
		// Normalize Ge to Le by negation: expr >= rhs  <=>  -expr <= -rhs.
		expr, rhs := c.Expr.Clone(), c.RHS
		sense := c.Sense
		if sense == Ge {
			for i := range expr.Terms {
				expr.Terms[i].Coef = -expr.Terms[i].Coef
			}
			expr.Offset = -expr.Offset
			rhs = -rhs
			sense = Le
		}
		// Shift RHS into the expression: g = expr - rhs, so Eq means
		// g == 0 and Le means g <= 0.
		g := expr
		g.Offset -= rhs

		switch {
		case sense == Eq:
			q.addSquare(g, opts.EqPenalty)
		case opts.Method == UnbalancedPenalty:
			// h = -g >= 0; add -l1*h + l2*h^2.
			h := g
			for i := range h.Terms {
				h.Terms[i].Coef = -h.Terms[i].Coef
			}
			h.Offset = -h.Offset
			q.addScaledLinear(h, -opts.UnbalancedL1)
			q.addSquare(h, opts.UnbalancedL2)
		default: // SlackPenalty
			lo, _ := exprBounds(g)
			if lo > 0 {
				return nil, fmt.Errorf("cqm: constraint %q is infeasible (min %.3g > 0)", c.Name, lo)
			}
			ub := int(math.Ceil(-lo))
			// g + s == 0 with s in [0, ub].
			eq := g
			eq.Terms = append([]Term(nil), g.Terms...)
			for _, coef := range slackCoefficients(ub) {
				eq.Terms = append(eq.Terms, Term{newSlack(), float64(coef)})
			}
			q.addSquare(eq, opts.EqPenalty)
		}
	}
	return q, nil
}

// Energy evaluates the QUBO for a binary assignment of length NumVars.
func (q *QUBO) Energy(x []bool) float64 {
	e := q.Offset
	for i, c := range q.Linear {
		if x[i] {
			e += c
		}
	}
	for p, c := range q.Quad {
		if x[p.A] && x[p.B] {
			e += c
		}
	}
	return e
}

// ToModel wraps the QUBO as an unconstrained Model so the annealing
// engine can sample it directly.
func (q *QUBO) ToModel() *Model {
	m := New()
	for i := 0; i < q.NumVars; i++ {
		kind := "q"
		if i >= q.BaseVars {
			kind = "slack"
		}
		m.AddBinary(fmt.Sprintf("%s%d", kind, i))
	}
	m.AddObjectiveOffset(q.Offset)
	for i, c := range q.Linear {
		if c != 0 {
			m.AddObjectiveLinear(VarID(i), c)
		}
	}
	for p, c := range q.Quad {
		m.AddObjectiveQuad(p.A, p.B, c)
	}
	return m
}

// NumQuadTerms returns the number of nonzero off-diagonal couplers.
func (q *QUBO) NumQuadTerms() int { return len(q.Quad) }

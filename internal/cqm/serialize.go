package cqm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteModel serializes a model to a line-oriented text format (the
// role D-Wave's CQM file serialization plays: shipping a model to a
// remote solver or archiving the exact problem an experiment solved).
// The format round-trips exactly: floats are emitted with full
// precision and names are quoted.
//
//	CQM 1
//	VAR <id> <quoted name>
//	OBJ OFFSET <v>
//	OBJ LIN <var> <coef>
//	OBJ QUAD <a> <b> <coef>
//	OBJ SQ <offset> <n> (<var> <coef>)*
//	CON <sense> <rhs> <offset> <n> (<var> <coef>)* <quoted name>
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "CQM 1")
	for i := 0; i < m.NumVars(); i++ {
		fmt.Fprintf(bw, "VAR %d %s\n", i, strconv.Quote(m.VarName(VarID(i))))
	}
	linear, quad, squares, offset := m.ObjectiveParts()
	if offset != 0 {
		fmt.Fprintf(bw, "OBJ OFFSET %s\n", fl(offset))
	}
	for _, t := range linear {
		fmt.Fprintf(bw, "OBJ LIN %d %s\n", t.Var, fl(t.Coef))
	}
	for _, q := range quad {
		fmt.Fprintf(bw, "OBJ QUAD %d %d %s\n", q.A, q.B, fl(q.Coef))
	}
	for _, sq := range squares {
		fmt.Fprintf(bw, "OBJ SQ %s %d", fl(sq.Offset), len(sq.Terms))
		for _, t := range sq.Terms {
			fmt.Fprintf(bw, " %d %s", t.Var, fl(t.Coef))
		}
		fmt.Fprintln(bw)
	}
	for _, c := range m.Constraints() {
		fmt.Fprintf(bw, "CON %s %s %s %d", senseWord(c.Sense), fl(c.RHS), fl(c.Expr.Offset), len(c.Expr.Terms))
		for _, t := range c.Expr.Terms {
			fmt.Fprintf(bw, " %d %s", t.Var, fl(t.Coef))
		}
		fmt.Fprintf(bw, " %s\n", strconv.Quote(c.Name))
	}
	return bw.Flush()
}

func fl(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func senseWord(s Sense) string {
	switch s {
	case Eq:
		return "EQ"
	case Le:
		return "LE"
	case Ge:
		return "GE"
	}
	return "??"
}

func parseSense(s string) (Sense, error) {
	switch s {
	case "EQ":
		return Eq, nil
	case "LE":
		return Le, nil
	case "GE":
		return Ge, nil
	}
	return 0, fmt.Errorf("cqm: unknown sense %q", s)
}

// ReadModel parses the format written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("cqm: empty model stream")
	}
	if strings.TrimSpace(sc.Text()) != "CQM 1" {
		return nil, fmt.Errorf("cqm: bad header %q", sc.Text())
	}
	m := New()
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(err error) (*Model, error) {
			return nil, fmt.Errorf("cqm: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "VAR":
			if len(fields) < 3 {
				return fail(fmt.Errorf("short VAR line"))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail(err)
			}
			name, err := strconv.Unquote(strings.Join(fields[2:], " "))
			if err != nil {
				return fail(err)
			}
			if got := m.AddBinary(name); int(got) != id {
				return fail(fmt.Errorf("variable %d declared out of order (got id %d)", id, got))
			}
		case "OBJ":
			if len(fields) < 2 {
				return fail(fmt.Errorf("short OBJ line"))
			}
			switch fields[1] {
			case "OFFSET":
				v, err := parseFloatField(fields, 2)
				if err != nil {
					return fail(err)
				}
				m.AddObjectiveOffset(v)
			case "LIN":
				id, err1 := parseIntField(fields, 2)
				v, err2 := parseFloatField(fields, 3)
				if err1 != nil || err2 != nil {
					return fail(fmt.Errorf("bad OBJ LIN"))
				}
				m.AddObjectiveLinear(VarID(id), v)
			case "QUAD":
				a, err1 := parseIntField(fields, 2)
				b, err2 := parseIntField(fields, 3)
				v, err3 := parseFloatField(fields, 4)
				if err1 != nil || err2 != nil || err3 != nil {
					return fail(fmt.Errorf("bad OBJ QUAD"))
				}
				m.AddObjectiveQuad(VarID(a), VarID(b), v)
			case "SQ":
				off, err1 := parseFloatField(fields, 2)
				n, err2 := parseIntField(fields, 3)
				if err1 != nil || err2 != nil || len(fields) != 4+2*n {
					return fail(fmt.Errorf("bad OBJ SQ"))
				}
				e := LinExpr{Offset: off}
				for k := 0; k < n; k++ {
					id, err1 := parseIntField(fields, 4+2*k)
					v, err2 := parseFloatField(fields, 5+2*k)
					if err1 != nil || err2 != nil {
						return fail(fmt.Errorf("bad OBJ SQ term %d", k))
					}
					e.Add(VarID(id), v)
				}
				m.AddObjectiveSquared(e)
			default:
				return fail(fmt.Errorf("unknown OBJ kind %q", fields[1]))
			}
		case "CON":
			if len(fields) < 6 {
				return fail(fmt.Errorf("short CON line"))
			}
			sense, err := parseSense(fields[1])
			if err != nil {
				return fail(err)
			}
			rhs, err1 := parseFloatField(fields, 2)
			off, err2 := parseFloatField(fields, 3)
			n, err3 := parseIntField(fields, 4)
			if err1 != nil || err2 != nil || err3 != nil || len(fields) < 5+2*n+1 {
				return fail(fmt.Errorf("bad CON line"))
			}
			e := LinExpr{Offset: off}
			for k := 0; k < n; k++ {
				id, err1 := parseIntField(fields, 5+2*k)
				v, err2 := parseFloatField(fields, 6+2*k)
				if err1 != nil || err2 != nil {
					return fail(fmt.Errorf("bad CON term %d", k))
				}
				e.Add(VarID(id), v)
			}
			name, err := strconv.Unquote(strings.Join(fields[5+2*n:], " "))
			if err != nil {
				return fail(err)
			}
			m.AddConstraint(name, e, sense, rhs)
		default:
			return fail(fmt.Errorf("unknown record %q", fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cqm: %w", err)
	}
	// Validate variable references.
	check := func(v VarID) error {
		if int(v) < 0 || int(v) >= m.NumVars() {
			return fmt.Errorf("cqm: reference to undeclared variable %d", v)
		}
		return nil
	}
	linear, quad, squares, _ := m.ObjectiveParts()
	for _, t := range linear {
		if err := check(t.Var); err != nil {
			return nil, err
		}
	}
	for _, q := range quad {
		if err := check(q.A); err != nil {
			return nil, err
		}
		if err := check(q.B); err != nil {
			return nil, err
		}
	}
	for _, sq := range squares {
		for _, t := range sq.Terms {
			if err := check(t.Var); err != nil {
				return nil, err
			}
		}
	}
	for _, c := range m.Constraints() {
		for _, t := range c.Expr.Terms {
			if err := check(t.Var); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func parseIntField(fields []string, i int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	return strconv.Atoi(fields[i])
}

func parseFloatField(fields []string, i int) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	return strconv.ParseFloat(fields[i], 64)
}

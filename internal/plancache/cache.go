// Package plancache is a bounded LRU of verified migration plans keyed
// by a canonical instance fingerprint, so repeated or permuted-repeat
// rebalance rounds skip the solver entirely.
//
// The cache never takes its own word for anything. Put refuses a plan
// that does not pass verify.Plan against the instance it is being
// stored for, and every Get re-runs verify.Plan on the reconstructed
// plan before it is served — a corrupt, stale, or fingerprint-colliding
// entry is evicted and counted (plancache.rejects), never returned.
// That makes the fingerprint purely an index: a false positive costs
// one wasted verification, not a wrong plan.
//
// Plans are stored in canonical process order (see fingerprint.go) and
// mapped back through the requesting instance's own permutation, so a
// round whose processes are a permutation of a cached round still hits.
// For the identical instance the mapping round-trips byte-identically.
//
// The hit path is allocation-free once warm when served through
// GetInto: the fingerprint scratch, the permutation buffers and the
// verification Report are cache-owned and reused under the mutex, and
// verify.PlanInto pools its load vector.
//
// Exported metrics (nil-safe via a nil obs.Registry):
//
//	plancache.hits / plancache.misses / plancache.rejects  (counters)
//	plancache.puts / plancache.put_rejects                 (counters)
//	plancache.evictions                                    (counter)
//	plancache.loads / plancache.load_rejects               (counters)
//	plancache.journal_errors / plancache.snapshots         (counters)
//	plancache.entries / plancache.bytes                    (gauges)
//	plancache.entry_bytes                                  (histogram)
package plancache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/verify"
)

// DefaultCapacity bounds the cache when Config.Capacity is zero.
const DefaultCapacity = 256

// DefaultEpsilon is the weight quantization step when Config.Epsilon is
// zero: tight enough to be "exact match up to float noise", so the
// default cache never trades plan quality for hit rate. Raise it to
// make near-identical rounds (load drift below ε) hit too.
const DefaultEpsilon = 1e-9

// Params identify the solve configuration a cached plan answers. Two
// requests only share an entry when their Params match exactly.
type Params struct {
	// K is the migration budget exactly as verify.Plan receives it
	// (negative disables the cap). It is part of the fingerprint: a plan
	// verified under budget 8 must not answer a budget-4 request.
	K int
	// Form discriminates constraint shapes that are invisible to the
	// instance itself (e.g. the CQM formulation a caller insists on).
	// Callers that don't care pass zero.
	Form int
}

// Config tunes a Cache.
type Config struct {
	// Capacity is the maximum number of entries (DefaultCapacity when
	// zero or negative); the least-recently-used entry is evicted first.
	Capacity int
	// Epsilon is the weight quantization step for the fingerprint
	// (DefaultEpsilon when zero or negative).
	Epsilon float64
	// Verify is the options block for the mandatory verify-on-hit and
	// verify-on-put gates. Its MaxLoad knob participates in the
	// fingerprint: entries cached under one load cap never answer
	// requests under another.
	Verify verify.Options
	// Journal, when non-nil, receives one encoded record per accepted
	// Put (see persist.go). A *wal.Log satisfies it; when the value also
	// implements Compactor, the cache snapshots itself into a fresh
	// generation whenever the journal says compaction is due. Journal
	// failures are counted (plancache.journal_errors), never surfaced:
	// the cache stays correct without durability.
	Journal Journal
	// Obs receives plancache.* metrics (nil is fine).
	Obs *obs.Registry
}

// Stats is a point-in-time snapshot of the cache counters, for tests
// and artifacts that don't want to go through an obs.Registry.
type Stats struct {
	Hits        int64 // served plans (verified on the way out)
	Misses      int64 // fingerprint not present
	Rejects     int64 // present but failed verify-on-hit; evicted, not served
	Puts        int64 // accepted stores
	PutRejects  int64 // stores refused by verify-on-put
	Evictions   int64 // entries dropped (capacity + verify rejects)
	Loads       int64 // records re-admitted from the journal
	LoadRejects int64 // journal records dropped (corrupt, stale, unverifiable)
	JournalErrs int64 // journal appends/compactions that failed
	Snapshots   int64 // journal compactions performed
	Entries     int   // current entry count
	Bytes       int64 // current stored plan bytes
}

// entry is one cached plan, held in canonical process order. The
// canonical instance rides along so the entry can be re-encoded for the
// journal snapshot without keeping the requester's instance alive.
type entry struct {
	fp      fingerprint
	m       int
	p       Params
	ctasks  []int     // canonical task counts (cache-owned)
	cweight []float64 // canonical per-task weights (cache-owned)
	plan    *lrp.Plan // cache-owned canonical copy; never aliased out
	bytes   int64
}

// Cache is a bounded, verified, permutation-aware plan LRU. Safe for
// concurrent use. A nil *Cache no-ops: Get misses, Put drops.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *entry
	idx   map[fingerprint]*list.Element
	sc    scratch
	rep   verify.Report // reusable verify-on-hit/on-put report
	bytes int64
	stats Stats

	cHit, cMiss, cReject, cPut, cPutReject, cEvict *obs.Counter
	cLoad, cLoadReject, cJournalErr, cSnapshot     *obs.Counter
	gEntries, gBytes                               *obs.Gauge
	hEntryBytes                                    *obs.Histogram
}

// New builds a Cache. Metric handles are resolved once here so the hot
// path never touches the registry maps.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	r := cfg.Obs
	return &Cache{
		cfg:         cfg,
		ll:          list.New(),
		idx:         make(map[fingerprint]*list.Element),
		cHit:        r.Counter("plancache.hits"),
		cMiss:       r.Counter("plancache.misses"),
		cReject:     r.Counter("plancache.rejects"),
		cPut:        r.Counter("plancache.puts"),
		cPutReject:  r.Counter("plancache.put_rejects"),
		cEvict:      r.Counter("plancache.evictions"),
		cLoad:       r.Counter("plancache.loads"),
		cLoadReject: r.Counter("plancache.load_rejects"),
		cJournalErr: r.Counter("plancache.journal_errors"),
		cSnapshot:   r.Counter("plancache.snapshots"),
		gEntries:    r.Gauge("plancache.entries"),
		gBytes:      r.Gauge("plancache.bytes"),
		hEntryBytes: r.Histogram("plancache.entry_bytes"),
	}
}

// Epsilon reports the quantization step in effect.
func (c *Cache) Epsilon() float64 {
	if c == nil {
		return DefaultEpsilon
	}
	return c.cfg.Epsilon
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// cacheable screens instances the fingerprint cannot canonicalize.
func cacheable(in *lrp.Instance) bool {
	return in != nil && len(in.Tasks) > 0 && len(in.Tasks) == len(in.Weight)
}

// Get returns a freshly allocated plan for the instance if a verified
// entry exists, or (nil, false). The returned plan is the caller's to
// mutate. Allocation-sensitive callers use GetInto.
func (c *Cache) Get(in *lrp.Instance, p Params) (*lrp.Plan, bool) {
	if c == nil || !cacheable(in) {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.lookupLocked(in, p)
	if el == nil {
		return nil, false
	}
	dst := lrp.ZeroPlan(len(in.Tasks))
	if !c.serveLocked(el, dst, in, p) {
		return nil, false
	}
	return dst, true
}

// GetInto is Get writing into a caller-owned plan (reshaped in place as
// needed): the zero-allocation hit path. dst's previous contents are
// overwritten on a hit and untouched on a miss.
func (c *Cache) GetInto(dst *lrp.Plan, in *lrp.Instance, p Params) bool {
	if c == nil || dst == nil || !cacheable(in) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.lookupLocked(in, p)
	if el == nil {
		return false
	}
	return c.serveLocked(el, dst, in, p)
}

// lookupLocked fingerprints the instance (filling c.sc.perm/inv) and
// returns the matching element, counting the miss if there is none.
func (c *Cache) lookupLocked(in *lrp.Instance, p Params) *list.Element {
	fp := fingerprintInto(&c.sc, in.Tasks, in.Weight, c.cfg.Epsilon, p, c.cfg.Verify.MaxLoad)
	el := c.idx[fp]
	if el == nil {
		c.stats.Misses++
		c.cMiss.Inc()
		return nil
	}
	return el
}

// serveLocked reconstructs el's canonical plan in the requesting
// instance's process order, re-verifies it, and either serves it (LRU
// front, hit counted) or evicts it (reject counted, never served).
// c.sc.perm must hold the requester's permutation from lookupLocked.
func (c *Cache) serveLocked(el *list.Element, dst *lrp.Plan, in *lrp.Instance, p Params) bool {
	ent := el.Value.(*entry)
	m := len(in.Tasks)
	if ent.m != m {
		// Fingerprint collision across sizes; the entry cannot answer.
		c.evictLocked(el)
		c.stats.Rejects++
		c.cReject.Inc()
		return false
	}
	reshape(dst, m)
	perm := c.sc.perm
	for a := 0; a < m; a++ {
		row, src := dst.X[perm[a]], ent.plan.X[a]
		for b := 0; b < m; b++ {
			row[perm[b]] = src[b]
		}
	}
	verify.PlanInto(&c.rep, in, dst, p.K, c.cfg.Verify)
	if !c.rep.Ok() {
		// Corrupt, stale, or colliding entry: drop it and report a miss.
		c.evictLocked(el)
		c.stats.Rejects++
		c.cReject.Inc()
		return false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	c.cHit.Inc()
	return true
}

// Put stores a plan for the instance after verifying it. A plan that
// fails verification is refused with the verifier's error (wrapping
// verify.ErrRejected) and counted as a put_reject. The plan is deep-
// copied into canonical order, so the caller keeps ownership of its
// argument.
func (c *Cache) Put(in *lrp.Instance, p Params, plan *lrp.Plan) error {
	if c == nil {
		return nil
	}
	if !cacheable(in) || plan == nil {
		return fmt.Errorf("plancache: uncacheable instance or nil plan")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(in, p, plan, true)
}

// putLocked verifies, canonicalizes and inserts one plan. journal=false
// is the replay path: a record being re-admitted from disk must not be
// re-appended to the very log it came from.
func (c *Cache) putLocked(in *lrp.Instance, p Params, plan *lrp.Plan, journal bool) error {
	verify.PlanInto(&c.rep, in, plan, p.K, c.cfg.Verify)
	if !c.rep.Ok() {
		c.stats.PutRejects++
		c.cPutReject.Inc()
		return fmt.Errorf("plancache: refusing unverified plan: %w", c.rep.Err())
	}
	fp := fingerprintInto(&c.sc, in.Tasks, in.Weight, c.cfg.Epsilon, p, c.cfg.Verify.MaxLoad)
	m := len(in.Tasks)
	canon := lrp.ZeroPlan(m)
	ctasks := make([]int, m)
	cweight := make([]float64, m)
	inv := c.sc.inv
	for i := 0; i < m; i++ {
		src, row := plan.X[i], canon.X[inv[i]]
		for j := 0; j < m; j++ {
			row[inv[j]] = src[j]
		}
		ctasks[inv[i]] = in.Tasks[i]
		cweight[inv[i]] = in.Weight[i]
	}
	ent := &entry{
		fp: fp, m: m, p: p, ctasks: ctasks, cweight: cweight,
		plan: canon, bytes: int64(m) * int64(m) * 8,
	}
	if el := c.idx[fp]; el != nil {
		// Replace in place (a fresher plan for the same key).
		old := el.Value.(*entry)
		c.bytes += ent.bytes - old.bytes
		el.Value = ent
		c.ll.MoveToFront(el)
	} else {
		c.idx[fp] = c.ll.PushFront(ent)
		c.bytes += ent.bytes
	}
	for c.ll.Len() > c.cfg.Capacity {
		c.evictLocked(c.ll.Back())
	}
	c.stats.Puts++
	c.cPut.Inc()
	c.hEntryBytes.Observe(float64(ent.bytes))
	c.gEntries.Set(float64(c.ll.Len()))
	c.gBytes.Set(float64(c.bytes))
	if journal {
		c.journalLocked(ent)
	}
	return nil
}

// evictLocked removes one element and updates eviction accounting.
func (c *Cache) evictLocked(el *list.Element) {
	ent := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.idx, ent.fp)
	c.bytes -= ent.bytes
	c.stats.Evictions++
	c.cEvict.Inc()
	c.gEntries.Set(float64(c.ll.Len()))
	c.gBytes.Set(float64(c.bytes))
}

// reshape sizes dst to m×m, reusing existing row capacity.
func reshape(dst *lrp.Plan, m int) {
	if cap(dst.X) < m {
		dst.X = make([][]int, m)
	} else {
		dst.X = dst.X[:m]
	}
	for i := range dst.X {
		if cap(dst.X[i]) < m {
			dst.X[i] = make([]int, m)
		} else {
			dst.X[i] = dst.X[i][:m]
		}
	}
}

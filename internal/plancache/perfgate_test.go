package plancache

import (
	"math/rand"
	"testing"

	"repro/internal/lrp"
	"repro/internal/obs"
)

// TestPerfGateCacheHitZeroAlloc is the merge-blocking allocation gate:
// a warm cache hit through GetInto — fingerprint, canonical sort, LRU
// lookup, permutation map-back, and the mandatory verify-on-hit pass —
// must perform zero heap allocations. This is what makes verify-on-hit
// affordable on every round of a hot rebalance loop.
func TestPerfGateCacheHitZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randInstance(rng, 32)
	plan := randPlan(rng, in, 64)
	c := New(Config{Obs: obs.NewRegistry()})
	if err := c.Put(in, Params{K: -1}, plan); err != nil {
		t.Fatal(err)
	}
	dst := lrp.ZeroPlan(32)
	missed := false
	hit := func() {
		if !c.GetInto(dst, in, Params{K: -1}) {
			missed = true
		}
	}
	hit() // warm the pooled verify scratch
	allocs := testing.AllocsPerRun(200, hit)
	if missed {
		t.Fatal("warm GetInto missed")
	}
	if allocs != 0 {
		t.Fatalf("warm cache hit allocates %.1f times per op, want 0", allocs)
	}
}

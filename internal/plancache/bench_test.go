package plancache

import (
	"math/rand"
	"testing"

	"repro/internal/lrp"
)

// BenchmarkCacheHit measures the full warm hit path at the paper's
// largest size (M=32): fingerprint + canonical sort + LRU lookup +
// permutation map-back + verify-on-hit. allocs/op is gated at 0 by
// TestPerfGateCacheHitZeroAlloc and by benchdiff against the committed
// baseline.
func BenchmarkCacheHit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randInstance(rng, 32)
	plan := randPlan(rng, in, 64)
	c := New(Config{})
	if err := c.Put(in, Params{K: -1}, plan); err != nil {
		b.Fatal(err)
	}
	dst := lrp.ZeroPlan(32)
	if !c.GetInto(dst, in, Params{K: -1}) {
		b.Fatal("miss")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.GetInto(dst, in, Params{K: -1}) {
			b.Fatal("miss")
		}
	}
}

// BenchmarkCacheMiss prices the pure lookup failure: fingerprint +
// canonical sort + map probe on an absent key.
func BenchmarkCacheMiss(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := randInstance(rng, 32)
	c := New(Config{})
	dst := lrp.ZeroPlan(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.GetInto(dst, in, Params{K: -1}) {
			b.Fatal("hit on empty cache")
		}
	}
}

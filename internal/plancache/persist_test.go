package plancache

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/verify"
	"repro/internal/wal"
)

// memJournal is an in-memory Journal with optional scripted failures
// and optional compaction support.
type memJournal struct {
	records    [][]byte
	failNext   bool
	compactDue bool
	compacted  [][]byte
}

func (j *memJournal) Append(rec []byte) error {
	if j.failNext {
		j.failNext = false
		return errors.New("journal down")
	}
	j.records = append(j.records, append([]byte(nil), rec...))
	return nil
}

func (j *memJournal) CompactDue() bool { return j.compactDue }

func (j *memJournal) Compact(records [][]byte) error {
	j.compactDue = false
	j.compacted = records
	j.records = nil
	for _, r := range records {
		j.records = append(j.records, append([]byte(nil), r...))
	}
	return nil
}

// putN journals n random verified plans into c and returns the
// instances and params used, permuting half the instances on the way
// in so canonicalization is exercised.
func putN(t *testing.T, c *Cache, rng *rand.Rand, n int) ([]*lrp.Instance, []Params) {
	t.Helper()
	ins := make([]*lrp.Instance, n)
	ps := make([]Params, n)
	for i := range ins {
		in := randInstance(rng, 4+rng.Intn(5))
		plan := randPlan(rng, in, 6)
		p := Params{K: -1}
		if err := c.Put(in, p, plan); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		ins[i], ps[i] = in, p
	}
	return ins, ps
}

// TestJournalRoundTripThroughWAL is the restart story end to end: puts
// journaled through a real WAL, the process "dies", a fresh cache
// loads the replayed records and serves every original instance.
func TestJournalRoundTripThroughWAL(t *testing.T) {
	dir := t.TempDir()
	log, recs, err := wal.Open(wal.Options{Dir: dir, Name: "plancache", Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	rng := rand.New(rand.NewSource(7))
	c := New(Config{Journal: log})
	ins, ps := putN(t, c, rng, 12)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, recs, err := wal.Open(wal.Options{Dir: dir, Name: "plancache", Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recs) != 12 {
		t.Fatalf("replayed %d records, want 12", len(recs))
	}
	reg := obs.NewRegistry()
	c2 := New(Config{Journal: log2, Obs: reg})
	kept, rejected := c2.Load(recs)
	if kept != 12 || rejected != 0 {
		t.Fatalf("Load = (%d, %d), want (12, 0)", kept, rejected)
	}
	if v := reg.Counter("plancache.loads").Value(); v != 12 {
		t.Fatalf("plancache.loads = %d, want 12", v)
	}
	for i, in := range ins {
		plan, ok := c2.Get(in, ps[i])
		if !ok {
			t.Fatalf("instance %d missed after reload", i)
		}
		rep := verify.Plan(in, plan, ps[i].K, verify.Options{})
		if !rep.Ok() {
			t.Fatalf("instance %d served unverifiable plan: %v", i, rep.Err())
		}
	}
	// Loading must not have re-journaled: the log still holds 12 records.
	if st := log2.Stats(); st.Appends != 0 {
		t.Fatalf("Load re-journaled %d records", st.Appends)
	}
}

// TestLoadDropsCorruptAndMalformedRecords feeds Load one record of
// every failure class; each is rejected and counted, and the corrupted
// plan is never served.
func TestLoadDropsCorruptAndMalformedRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	j := &memJournal{}
	c := New(Config{Journal: j})
	ins, ps := putN(t, c, rng, 3)

	good := j.records
	// Corrupt record 0's plan: break conservation by bumping one cell.
	var pr persistRecord
	if err := json.Unmarshal(good[0], &pr); err != nil {
		t.Fatal(err)
	}
	pr.Plan[0][0]++
	corrupt, _ := json.Marshal(pr)

	bad := [][]byte{
		corrupt,
		[]byte("{truncated"), // undecodable
		[]byte(`{"v":99,"tasks":[1],"weight":[1],"plan":[[1]]}`),  // wrong version
		[]byte(`{"v":1,"tasks":[1,2],"weight":[1],"plan":[[1]]}`), // shape mismatch
		[]byte(`{"v":1,"tasks":[-1],"weight":[1],"plan":[[1]]}`),  // invalid instance
	}
	reg := obs.NewRegistry()
	c2 := New(Config{Obs: reg})
	kept, rejected := c2.Load(append(bad, good[1], good[2]))
	if kept != 2 || rejected != len(bad) {
		t.Fatalf("Load = (%d, %d), want (2, %d)", kept, rejected, len(bad))
	}
	if v := reg.Counter("plancache.load_rejects").Value(); v != int64(len(bad)) {
		t.Fatalf("load_rejects = %d, want %d", v, len(bad))
	}
	// The corrupted entry is absent: its instance misses.
	if _, ok := c2.Get(ins[0], ps[0]); ok {
		t.Fatal("corrupt journal record was served")
	}
	for i := 1; i < 3; i++ {
		if _, ok := c2.Get(ins[i], ps[i]); !ok {
			t.Fatalf("clean record %d missed", i)
		}
	}
}

// TestLoadRejectsStaleConfig re-verifies under the *current* config: a
// record journaled under a lax load cap is dropped when reloaded into
// a cache whose cap the plan violates.
func TestLoadRejectsStaleConfig(t *testing.T) {
	in := lrp.MustInstance([]int{8, 1}, []float64{1, 1})
	plan := lrp.NewPlan(in) // identity: max load 8
	j := &memJournal{}
	c := New(Config{Journal: j})
	if err := c.Put(in, Params{K: -1}, plan); err != nil {
		t.Fatal(err)
	}
	strict := New(Config{Verify: verify.Options{MaxLoad: 4}})
	kept, rejected := strict.Load(j.records)
	if kept != 0 || rejected != 1 {
		t.Fatalf("Load under strict cap = (%d, %d), want (0, 1)", kept, rejected)
	}
}

// TestJournalFailureDoesNotFailPut: durability is best-effort; a down
// journal costs a counter, not the entry.
func TestJournalFailureDoesNotFailPut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	j := &memJournal{failNext: true}
	reg := obs.NewRegistry()
	c := New(Config{Journal: j, Obs: reg})
	in := randInstance(rng, 5)
	if err := c.Put(in, Params{K: -1}, randPlan(rng, in, 4)); err != nil {
		t.Fatalf("Put failed on journal error: %v", err)
	}
	if _, ok := c.Get(in, Params{K: -1}); !ok {
		t.Fatal("entry missing after journal failure")
	}
	if v := reg.Counter("plancache.journal_errors").Value(); v != 1 {
		t.Fatalf("journal_errors = %d, want 1", v)
	}
	if len(j.records) != 0 {
		t.Fatalf("failed journal recorded %d records", len(j.records))
	}
}

// TestSnapshotCompaction: when the journal reports compaction due, the
// cache rewrites it as its live entries (LRU first), dropping
// superseded puts — and the snapshot reloads to an equivalent cache.
func TestSnapshotCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	j := &memJournal{}
	c := New(Config{Journal: j, Capacity: 4})
	ins, ps := putN(t, c, rng, 6) // 2 evicted by capacity
	j.compactDue = true
	in := randInstance(rng, 5)
	if err := c.Put(in, Params{K: -1}, randPlan(rng, in, 4)); err != nil {
		t.Fatal(err)
	}
	if j.compacted == nil {
		t.Fatal("compaction did not run")
	}
	if len(j.records) != 4 {
		t.Fatalf("snapshot holds %d records, want 4 (capacity)", len(j.records))
	}
	if st := c.Stats(); st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", st.Snapshots)
	}
	c2 := New(Config{Capacity: 4})
	if kept, rejected := c2.Load(j.records); kept != 4 || rejected != 0 {
		t.Fatalf("snapshot Load = (%d, %d), want (4, 0)", kept, rejected)
	}
	// The newest put and the most recent survivors hit; order-sensitive
	// LRU state matches: evicting one more keeps the same survivors.
	if _, ok := c2.Get(in, Params{K: -1}); !ok {
		t.Fatal("newest entry missing from snapshot")
	}
	for i := 4; i < 6; i++ {
		if _, ok := c2.Get(ins[i], ps[i]); !ok {
			t.Fatalf("recent entry %d missing from snapshot", i)
		}
	}
}

// TestWALCompactionEndToEnd drives the real *wal.Log Compactor path: a
// tiny compaction threshold forces generation turnover, and reopening
// the compacted log replays exactly the cache's live entries.
func TestWALCompactionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	clk := solve.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	open := func() (*wal.Log, [][]byte) {
		log, recs, err := wal.Open(wal.Options{
			Dir: dir, Name: "plancache", Policy: wal.SyncNone,
			CompactBytes: 512, CompactEvery: time.Millisecond, Clock: clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		return log, recs
	}
	log, _ := open()
	rng := rand.New(rand.NewSource(23))
	c := New(Config{Journal: log, Capacity: 8})
	for i := 0; i < 40; i++ {
		in := randInstance(rng, 4+rng.Intn(4))
		if err := c.Put(in, Params{K: -1}, randPlan(rng, in, 5)); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Millisecond)
	}
	if st := log.Stats(); st.Compactions == 0 {
		t.Fatal("WAL never compacted despite tiny threshold")
	}
	if st := c.Stats(); st.Snapshots == 0 {
		t.Fatal("cache counted no snapshots")
	}
	want := c.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, recs := open()
	defer log2.Close()
	// The replayed journal is the snapshot plus whatever was appended
	// after the last compaction — its tail must reload cleanly and
	// cover the live cache.
	if len(recs) > 8+int(c.Stats().Puts) {
		t.Fatalf("journal did not shrink: %d records", len(recs))
	}
	c2 := New(Config{Capacity: 8})
	kept, rejected := c2.Load(recs)
	if rejected != 0 {
		t.Fatalf("compacted journal had %d rejects (kept %d)", rejected, kept)
	}
	got := c2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("reloaded cache has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("entry %d differs after reload:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestNilCacheAndNilJournal: nil receivers and absent journals no-op.
func TestNilCacheAndNilJournal(t *testing.T) {
	var c *Cache
	if kept, rejected := c.Load([][]byte{[]byte("x")}); kept != 0 || rejected != 1 {
		t.Fatalf("nil cache Load = (%d, %d)", kept, rejected)
	}
	if c.Snapshot() != nil {
		t.Fatal("nil cache Snapshot != nil")
	}
	rng := rand.New(rand.NewSource(1))
	c2 := New(Config{}) // no journal
	in := randInstance(rng, 4)
	if err := c2.Put(in, Params{K: -1}, randPlan(rng, in, 3)); err != nil {
		t.Fatal(err)
	}
	if got := c2.Snapshot(); len(got) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(got))
	}
}

// Canonical instance fingerprinting for the verified plan cache.
//
// Two rebalance rounds rarely present the *same* instance object, but
// AMR-style workloads present the same instance up to two nuisances:
// process order (the drifting workload literally rotates weights) and
// float jitter far below anything that changes the optimal plan. The
// fingerprint quotients both out:
//
//   - every per-task weight is quantized to a configurable epsilon
//     (q = round(w/ε)), so weights within ε/2 of each other land on the
//     same integer;
//   - processes are re-ordered into a canonical permutation, sorted by
//     (quantized weight, task count), so any permutation of the same
//     multiset of processes hashes identically.
//
// The hash covers the canonical (tasks, qweight) sequence plus
// everything else that changes which plans are interchangeable: M, the
// migration budget k, the formulation discriminator, the load-cap knob
// and ε itself. Plans are stored in canonical space and mapped back
// through the requester's own permutation on the way out, so a hit for
// a permuted instance yields a correspondingly permuted plan.
//
// The fingerprint is advisory, never trusted: a colliding-but-different
// instance produces a plan that fails the mandatory verify-on-hit gate
// (conservation is exact), gets evicted, and is never served.
package plancache

import (
	"math"
	"slices"
)

// fingerprint is the 128-bit map key: two independent word-level
// FNV-1a-style streams over the canonical encoding. A comparable struct
// so lookups allocate nothing.
type fingerprint struct{ hi, lo uint64 }

const (
	fnvOffset  = 14695981039346656037
	fnvOffset2 = 14695981039346656037 ^ 0x9e3779b97f4a7c15
	fnvPrime   = 1099511628211
)

// mix folds one 64-bit word into both streams; the second stream sees
// the word bit-rotated so the streams stay decorrelated.
func (f *fingerprint) mix(v uint64) {
	f.hi = (f.hi ^ v) * fnvPrime
	f.lo = (f.lo ^ ((v << 31) | (v >> 33))) * fnvPrime
}

// quantize maps a weight onto its epsilon bucket, clamping the
// degenerate float range (NaN, ±Inf, |w/ε| ≥ 2⁶³) to deterministic
// sentinels so a hostile instance cannot hit implementation-specific
// float→int conversion.
func quantize(w, eps float64) int64 {
	q := math.Round(w / eps)
	switch {
	case math.IsNaN(q):
		return math.MinInt64 + 1
	case q >= math.MaxInt64:
		return math.MaxInt64
	case q <= math.MinInt64:
		return math.MinInt64
	}
	return int64(q)
}

// procKey is one process in canonical order. The sort is by
// (qw, tasks, idx): idx is a deterministic tie-break only — it is never
// hashed, so permuted-equal instances still collide, while tied
// processes (equal qw AND equal tasks) are interchangeable for every
// exact invariant verify.Plan checks.
type procKey struct {
	qw    int64
	tasks int
	idx   int
}

// scratch is the cache-owned working set for one fingerprint
// computation, reused under the cache mutex so the hot path allocates
// nothing once warm.
type scratch struct {
	keys []procKey
	perm []int // canonical position -> original process index
	inv  []int // original process index -> canonical position
}

func (s *scratch) grow(m int) {
	if cap(s.keys) < m {
		s.keys = make([]procKey, m)
		s.perm = make([]int, m)
		s.inv = make([]int, m)
	}
	s.keys = s.keys[:m]
	s.perm = s.perm[:m]
	s.inv = s.inv[:m]
}

// fingerprintInto canonicalizes (tasks, weight) under eps and fills
// s.perm/s.inv as a side effect. The caller guarantees
// len(tasks) == len(weight).
func fingerprintInto(s *scratch, tasks []int, weight []float64, eps float64, p Params, maxLoad float64) fingerprint {
	m := len(tasks)
	s.grow(m)
	for j := 0; j < m; j++ {
		s.keys[j] = procKey{qw: quantize(weight[j], eps), tasks: tasks[j], idx: j}
	}
	slices.SortFunc(s.keys, func(a, b procKey) int {
		switch {
		case a.qw != b.qw:
			if a.qw < b.qw {
				return -1
			}
			return 1
		case a.tasks != b.tasks:
			return a.tasks - b.tasks
		default:
			return a.idx - b.idx
		}
	})
	fp := fingerprint{hi: fnvOffset, lo: fnvOffset2}
	fp.mix(uint64(m))
	fp.mix(uint64(p.K))
	fp.mix(uint64(p.Form))
	fp.mix(math.Float64bits(eps))
	fp.mix(uint64(quantize(maxLoad, eps)))
	for a := 0; a < m; a++ {
		k := s.keys[a]
		fp.mix(uint64(k.qw))
		fp.mix(uint64(k.tasks))
		s.perm[a] = k.idx
		s.inv[k.idx] = a
	}
	return fp
}

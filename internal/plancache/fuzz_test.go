package plancache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lrp"
	"repro/internal/verify"
)

// canonSeq is the fuzz oracle's own independent canonicalization: the
// multiset of (quantized weight, tasks) pairs in sorted order, plus the
// keyed knobs. Two instances are "the same up to epsilon and
// permutation" exactly when their canonSeqs are equal.
func canonSeq(tasks []int, weight []float64, eps float64, p Params, maxLoad float64) []int64 {
	m := len(tasks)
	seq := make([]int64, 0, 2*m+4)
	pairs := make([][2]int64, m)
	for j := 0; j < m; j++ {
		pairs[j] = [2]int64{quantize(weight[j], eps), int64(tasks[j])}
	}
	// insertion sort: the oracle shares no code with the fingerprint
	for i := 1; i < m; i++ {
		for k := i; k > 0; k-- {
			a, b := pairs[k-1], pairs[k]
			if a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]) {
				pairs[k-1], pairs[k] = b, a
			} else {
				break
			}
		}
	}
	seq = append(seq, int64(m), int64(p.K), int64(p.Form), quantize(maxLoad, eps))
	for _, pr := range pairs {
		seq = append(seq, pr[0], pr[1])
	}
	return seq
}

func seqEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzFingerprint proves the quantization-canonicalization contract:
// permuted-equal instances collide, epsilon-distinct instances don't,
// and the permutation the fingerprint derives round-trips a verified
// plan through the cache.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), uint8(4), 1e-3, 0.5, int16(3))
	f.Add(int64(7), uint8(1), 1e-9, -2.0, int16(-1))
	f.Add(int64(42), uint8(16), 0.25, 1e17, int16(0))
	f.Add(int64(99), uint8(32), 1e-6, math.MaxFloat64, int16(200))
	f.Fuzz(func(t *testing.T, seed int64, m uint8, eps, bump float64, k int16) {
		if m == 0 || m > 64 {
			return
		}
		if !(eps > 0) || math.IsInf(eps, 0) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(m)
		tasks := make([]int, n)
		weight := make([]float64, n)
		for j := 0; j < n; j++ {
			tasks[j] = rng.Intn(8)
			weight[j] = math.Trunc(rng.Float64()*1e6) * eps / 4
		}
		p := Params{K: int(k), Form: rng.Intn(4)}
		var sc1, sc2 scratch

		fpA := fingerprintInto(&sc1, tasks, weight, eps, p, 0)
		// perm/inv must be inverse permutations of each other.
		for a := 0; a < n; a++ {
			if sc1.perm[a] < 0 || sc1.perm[a] >= n || sc1.inv[sc1.perm[a]] != a {
				t.Fatalf("perm/inv not inverse at %d: perm=%v inv=%v", a, sc1.perm, sc1.inv)
			}
		}

		// Property 1: any permutation of the processes collides.
		perm := rng.Perm(n)
		ptasks := make([]int, n)
		pweight := make([]float64, n)
		for j, src := range perm {
			ptasks[j] = tasks[src]
			pweight[j] = weight[src]
		}
		if fpB := fingerprintInto(&sc2, ptasks, pweight, eps, p, 0); fpA != fpB {
			t.Fatalf("permuted instance changed fingerprint: %x != %x", fpA, fpB)
		}

		// Property 2: fingerprints agree exactly when the independent
		// canonical sequences agree — bumping one weight across an
		// epsilon bucket must change the key, staying inside must not.
		if math.IsNaN(bump) || math.IsInf(bump, 0) {
			return
		}
		btasks := append([]int(nil), tasks...)
		bweight := append([]float64(nil), weight...)
		bweight[rng.Intn(n)] += bump
		fpC := fingerprintInto(&sc2, btasks, bweight, eps, p, 0)
		same := seqEqual(
			canonSeq(tasks, weight, eps, p, 0),
			canonSeq(btasks, bweight, eps, p, 0),
		)
		if same != (fpA == fpC) {
			t.Fatalf("fingerprint/canonical-sequence disagree: seqSame=%v fpSame=%v (bump=%g eps=%g)", same, fpA == fpC, bump, eps)
		}

		// Property 3: a verified plan cached for the instance is served
		// for its permutation and still verifies there.
		if k < 0 {
			return
		}
		vt := append([]int(nil), tasks...)
		for j := range vt {
			vt[j]++ // lrp instances need ≥1 task per process
		}
		vw := make([]float64, n)
		pvt := make([]int, n)
		pvw := make([]float64, n)
		for j := range vw {
			vw[j] = 1 + weight[j]*1e-9
			if math.IsInf(vw[j], 0) {
				return // overflowed fuzz weights aren't valid instances
			}
		}
		for j, src := range perm {
			pvt[j] = vt[src]
			pvw[j] = vw[src]
		}
		in := lrp.MustInstance(vt, vw)
		pin := lrp.MustInstance(pvt, pvw)
		c := New(Config{Epsilon: eps})
		if err := c.Put(in, Params{K: -1}, lrp.NewPlan(in)); err != nil {
			t.Fatalf("Put(identity): %v", err)
		}
		got, ok := c.Get(pin, Params{K: -1})
		if !ok {
			t.Fatal("permuted instance missed its cached plan")
		}
		if rep := verify.Plan(pin, got, -1, verify.Options{}); !rep.Ok() {
			t.Fatalf("served plan failed verify.Plan: %v", rep.Err())
		}
	})
}

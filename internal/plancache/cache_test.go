package plancache

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/verify"
)

// randInstance builds a valid random instance with m processes.
func randInstance(rng *rand.Rand, m int) *lrp.Instance {
	tasks := make([]int, m)
	weight := make([]float64, m)
	for j := range tasks {
		tasks[j] = 1 + rng.Intn(12)
		weight[j] = 1 + 9*rng.Float64()
	}
	return lrp.MustInstance(tasks, weight)
}

// randPlan perturbs the identity plan with random feasible moves so the
// cached plans are not trivially diagonal; the result conserves every
// column by construction.
func randPlan(rng *rand.Rand, in *lrp.Instance, moves int) *lrp.Plan {
	p := lrp.NewPlan(in)
	m := in.NumProcs()
	for n := 0; n < moves; n++ {
		j := rng.Intn(m)
		i := rng.Intn(m)
		if i == j || p.X[j][j] == 0 {
			continue
		}
		p.Move(i, j, 1+rng.Intn(p.X[j][j]))
	}
	return p
}

// permuted returns the instance with process order shuffled by perm
// (new[j] = old[perm[j]]) plus the perm used.
func permuted(rng *rand.Rand, in *lrp.Instance) (*lrp.Instance, []int) {
	m := in.NumProcs()
	perm := rng.Perm(m)
	tasks := make([]int, m)
	weight := make([]float64, m)
	for j, src := range perm {
		tasks[j] = in.Tasks[src]
		weight[j] = in.Weight[src]
	}
	return lrp.MustInstance(tasks, weight), perm
}

// TestHitByteIdenticalAndVerified is the ISSUE's property test: for the
// same instance, a cache hit returns a plan byte-identical to the plan
// stored, and every hit passes verify.Plan.
func TestHitByteIdenticalAndVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(14)
		in := randInstance(rng, m)
		plan := randPlan(rng, in, rng.Intn(3*m))
		p := Params{K: -1, Form: rng.Intn(3)}
		c := New(Config{})
		if err := c.Put(in, p, plan); err != nil {
			t.Fatalf("trial %d: Put: %v", trial, err)
		}
		got, ok := c.Get(in, p)
		if !ok {
			t.Fatalf("trial %d: same-instance Get missed", trial)
		}
		if !reflect.DeepEqual(got.X, plan.X) {
			t.Fatalf("trial %d: hit not byte-identical:\nstored %v\ngot    %v", trial, plan.X, got.X)
		}
		if rep := verify.Plan(in, got, p.K, verify.Options{}); !rep.Ok() {
			t.Fatalf("trial %d: served plan failed verify.Plan: %v", trial, rep.Err())
		}
		// The returned plan is the caller's: mutating it must not
		// corrupt the cache.
		got.X[0][0]++
		again, ok := c.Get(in, p)
		if !ok || !reflect.DeepEqual(again.X, plan.X) {
			t.Fatalf("trial %d: cache aliased a served plan", trial)
		}
	}
}

// TestPermutedInstanceHits: a process-permuted replay of a cached round
// hits, and the served plan verifies against the permuted instance.
func TestPermutedInstanceHits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(14)
		in := randInstance(rng, m)
		plan := randPlan(rng, in, rng.Intn(3*m))
		p := Params{K: -1}
		c := New(Config{})
		if err := c.Put(in, p, plan); err != nil {
			t.Fatalf("trial %d: Put: %v", trial, err)
		}
		in2, _ := permuted(rng, in)
		got, ok := c.Get(in2, p)
		if !ok {
			t.Fatalf("trial %d: permuted Get missed", trial)
		}
		if rep := verify.Plan(in2, got, p.K, verify.Options{}); !rep.Ok() {
			t.Fatalf("trial %d: permuted hit failed verify.Plan: %v", trial, rep.Err())
		}
		if got.Migrated() != plan.Migrated() {
			t.Fatalf("trial %d: permuted hit migrates %d, stored plan %d", trial, got.Migrated(), plan.Migrated())
		}
	}
}

// TestEpsilonDistinct: weights moved by clearly more than epsilon miss;
// weights jittered well below epsilon still hit.
func TestEpsilonDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eps := 1e-3
	in := randInstance(rng, 8)
	plan := lrp.NewPlan(in)
	c := New(Config{Epsilon: eps})
	if err := c.Put(in, Params{K: -1}, plan); err != nil {
		t.Fatal(err)
	}

	near := in.Clone()
	for j := range near.Weight {
		near.Weight[j] += eps / 64 // far below a bucket boundary shift
	}
	if _, ok := c.Get(near, Params{K: -1}); !ok {
		// Jitter can still straddle one bucket edge; only fail when the
		// quantized view agrees and we *still* missed.
		same := true
		for j := range in.Weight {
			if quantize(in.Weight[j], eps) != quantize(near.Weight[j], eps) {
				same = false
			}
		}
		if same {
			t.Fatal("sub-epsilon jitter missed despite identical quantization")
		}
	}

	far := in.Clone()
	far.Weight[3] += 10 * eps
	if _, ok := c.Get(far, Params{K: -1}); ok {
		t.Fatal("epsilon-distinct instance hit")
	}
}

// TestParamsDiscriminate: the migration budget and the form tag are
// part of the key.
func TestParamsDiscriminate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := randInstance(rng, 6)
	plan := lrp.NewPlan(in)
	c := New(Config{})
	if err := c.Put(in, Params{K: 4, Form: 1}, plan); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(in, Params{K: 8, Form: 1}); ok {
		t.Fatal("budget-8 request answered by budget-4 entry")
	}
	if _, ok := c.Get(in, Params{K: 4, Form: 2}); ok {
		t.Fatal("form-2 request answered by form-1 entry")
	}
	if _, ok := c.Get(in, Params{K: 4, Form: 1}); !ok {
		t.Fatal("exact Params missed")
	}
}

// TestVerifyOnHitEvictsCorrupt reaches into the store (white-box) and
// corrupts the cached matrix: the next Get must reject, evict, count —
// and never serve the corrupt plan.
func TestVerifyOnHitEvictsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reg := obs.NewRegistry()
	in := randInstance(rng, 6)
	c := New(Config{Obs: reg})
	if err := c.Put(in, Params{K: -1}, lrp.NewPlan(in)); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.ll.Front().Value.(*entry).plan.X[0][0]++ // break conservation in place
	c.mu.Unlock()

	if _, ok := c.Get(in, Params{K: -1}); ok {
		t.Fatal("corrupt entry was served")
	}
	st := c.Stats()
	if st.Rejects != 1 || st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("want 1 reject, 1 eviction, 0 entries; got %+v", st)
	}
	if v := reg.Counter("plancache.rejects").Value(); v != 1 {
		t.Fatalf("plancache.rejects = %d, want 1", v)
	}
	if v := reg.Counter("plancache.evictions").Value(); v != 1 {
		t.Fatalf("plancache.evictions = %d, want 1", v)
	}
	// The entry is gone: a fresh Put must be accepted again.
	if err := c.Put(in, Params{K: -1}, lrp.NewPlan(in)); err != nil {
		t.Fatal(err)
	}
}

// TestPutRejectsUnverifiedPlan: Put refuses plans that fail
// verify.Plan, with an errors.Is-able rejection.
func TestPutRejectsUnverifiedPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	reg := obs.NewRegistry()
	in := randInstance(rng, 5)
	c := New(Config{Obs: reg})

	bad := lrp.NewPlan(in)
	bad.X[0][0]++ // invents a task
	err := c.Put(in, Params{K: -1}, bad)
	if err == nil || !errors.Is(err, verify.ErrRejected) {
		t.Fatalf("Put(bad) = %v, want verify.ErrRejected", err)
	}
	if c.Len() != 0 {
		t.Fatal("rejected plan was stored")
	}
	if v := reg.Counter("plancache.put_rejects").Value(); v != 1 {
		t.Fatalf("plancache.put_rejects = %d, want 1", v)
	}

	// Over-budget is a verification failure too.
	over := lrp.NewPlan(in)
	over.Move(1, 0, in.Tasks[0])
	if in.Tasks[0] > 1 {
		if err := c.Put(in, Params{K: 0}, over); err == nil || !errors.Is(err, verify.ErrRejected) {
			t.Fatalf("Put(over-budget) = %v, want verify.ErrRejected", err)
		}
	}
}

// TestLRUEviction: capacity bounds the store, oldest-touched goes
// first, and the bytes gauge tracks the survivors.
func TestLRUEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	reg := obs.NewRegistry()
	c := New(Config{Capacity: 2, Obs: reg})
	ins := []*lrp.Instance{randInstance(rng, 4), randInstance(rng, 5), randInstance(rng, 6)}
	for _, in := range ins {
		if err := c.Put(in, Params{K: -1}, lrp.NewPlan(in)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(ins[0], Params{K: -1}); ok {
		t.Fatal("LRU entry survived over capacity")
	}
	for _, in := range ins[1:] {
		if _, ok := c.Get(in, Params{K: -1}); !ok {
			t.Fatal("recent entry evicted")
		}
	}
	wantBytes := int64(5*5+6*6) * 8
	if st := c.Stats(); st.Bytes != wantBytes || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want bytes %d, evictions 1", st, wantBytes)
	}
	if v := reg.Gauge("plancache.bytes").Value(); v != float64(wantBytes) {
		t.Fatalf("plancache.bytes gauge = %g, want %d", v, wantBytes)
	}
}

// TestNilCacheNoops: a nil *Cache is a valid "caching disabled" value.
func TestNilCacheNoops(t *testing.T) {
	var c *Cache
	in := lrp.MustInstance([]int{1, 2}, []float64{1, 2})
	if _, ok := c.Get(in, Params{}); ok {
		t.Fatal("nil cache hit")
	}
	if c.GetInto(lrp.ZeroPlan(2), in, Params{}) {
		t.Fatal("nil cache GetInto hit")
	}
	if err := c.Put(in, Params{}, lrp.NewPlan(in)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache has state")
	}
}

// TestGetIntoMatchesGet: the zero-alloc path returns the same bytes as
// the allocating path and leaves dst untouched on a miss.
func TestGetIntoMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	in := randInstance(rng, 9)
	plan := randPlan(rng, in, 12)
	c := New(Config{})
	if err := c.Put(in, Params{K: -1}, plan); err != nil {
		t.Fatal(err)
	}
	dst := lrp.ZeroPlan(9)
	if !c.GetInto(dst, in, Params{K: -1}) {
		t.Fatal("GetInto missed")
	}
	if !reflect.DeepEqual(dst.X, plan.X) {
		t.Fatal("GetInto differs from stored plan")
	}
	other := randInstance(rng, 9)
	before := dst.Clone()
	if c.GetInto(dst, other, Params{K: -1}) {
		t.Fatal("unexpected hit")
	}
	if !reflect.DeepEqual(dst.X, before.X) {
		t.Fatal("miss mutated dst")
	}
}

// Durability for the verified plan cache.
//
// The cache journals every accepted Put as one self-contained JSON
// record — the *canonical* instance, the Params, and the canonical
// plan — through a caller-supplied Journal (in production a *wal.Log).
// On startup the daemon replays the journal and hands the surviving
// records to Load, which pushes every one of them through the exact
// same gate a live Put faces: decode, shape-validate, rebuild the
// instance, and re-run verify.Plan. A record that was corrupted on
// disk, or that was written under a config the current process no
// longer honours (different load cap, different budget), fails that
// gate, is counted as a load_reject and never enters the cache — the
// trust-but-verify invariant extends to bytes read back from disk.
//
// Records are canonical on purpose: re-fingerprinting the canonical
// sequence is the identity permutation, so Load needs no inverse
// bookkeeping, and two daemons journaling permuted views of the same
// round converge on byte-identical records.
//
// Journal failures never fail a Put. The cache is an accelerator;
// losing durability degrades restart warmth, not correctness.
package plancache

import (
	"encoding/json"
	"fmt"

	"repro/internal/lrp"
)

// persistVersion guards the record schema; bump on incompatible change.
const persistVersion = 1

// Journal receives one encoded record per accepted Put. *wal.Log
// satisfies it. Append must be safe for concurrent use and must not
// call back into the cache.
type Journal interface {
	Append(rec []byte) error
}

// Compactor is the optional snapshot-compaction side of a Journal.
// When the configured Journal implements it, the cache rewrites the
// journal as a snapshot of its live entries whenever CompactDue
// reports true after a journaled Put. *wal.Log satisfies it.
type Compactor interface {
	CompactDue() bool
	Compact(records [][]byte) error
}

// persistRecord is the on-disk schema: one verified entry in canonical
// process order. Verify options are deliberately absent — a loaded
// record is re-verified under the *current* config, so entries written
// under a laxer load cap are dropped, not trusted.
type persistRecord struct {
	V      int       `json:"v"`
	Tasks  []int     `json:"tasks"`
	Weight []float64 `json:"weight"`
	K      int       `json:"k"`
	Form   int       `json:"form,omitempty"`
	Plan   [][]int   `json:"plan"`
}

// encodeEntry serializes one cache entry as a journal record.
func encodeEntry(ent *entry) ([]byte, error) {
	return json.Marshal(persistRecord{
		V:      persistVersion,
		Tasks:  ent.ctasks,
		Weight: ent.cweight,
		K:      ent.p.K,
		Form:   ent.p.Form,
		Plan:   ent.plan.X,
	})
}

// journalLocked appends ent to the configured journal and, when the
// journal supports compaction and says it is due, rewrites it as a
// snapshot of the live entries. Failures are counted, never returned.
func (c *Cache) journalLocked(ent *entry) {
	j := c.cfg.Journal
	if j == nil {
		return
	}
	rec, err := encodeEntry(ent)
	if err != nil {
		c.stats.JournalErrs++
		c.cJournalErr.Inc()
		return
	}
	if err := j.Append(rec); err != nil {
		c.stats.JournalErrs++
		c.cJournalErr.Inc()
		return
	}
	comp, ok := j.(Compactor)
	if !ok || !comp.CompactDue() {
		return
	}
	if err := comp.Compact(c.snapshotLocked()); err != nil {
		c.stats.JournalErrs++
		c.cJournalErr.Inc()
		return
	}
	c.stats.Snapshots++
	c.cSnapshot.Inc()
}

// Snapshot encodes every live entry, least-recently-used first, so a
// replay of the snapshot reconstructs both the contents and the LRU
// order of the cache. Intended for journal compaction and tests.
func (c *Cache) Snapshot() [][]byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Cache) snapshotLocked() [][]byte {
	records := make([][]byte, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		rec, err := encodeEntry(el.Value.(*entry))
		if err != nil {
			continue // unencodable entry: skip, the snapshot stays valid
		}
		records = append(records, rec)
	}
	return records
}

// Load re-admits previously journaled records. Every record is
// decoded, shape-checked, rebuilt into an instance and re-verified by
// the normal put gate; failures of any kind are dropped and counted
// (plancache.load_rejects), never served. Records are applied in
// order, so a journal replayed from a Snapshot restores LRU order.
// Load does not re-journal what it admits. Returns (kept, rejected).
func (c *Cache) Load(records [][]byte) (kept, rejected int) {
	if c == nil {
		return 0, len(records)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range records {
		if err := c.loadOneLocked(rec); err != nil {
			rejected++
			c.stats.LoadRejects++
			c.cLoadReject.Inc()
			continue
		}
		kept++
		c.stats.Loads++
		c.cLoad.Inc()
	}
	return kept, rejected
}

// loadOneLocked decodes and re-admits a single journal record.
func (c *Cache) loadOneLocked(rec []byte) error {
	var pr persistRecord
	if err := json.Unmarshal(rec, &pr); err != nil {
		return fmt.Errorf("plancache: undecodable journal record: %w", err)
	}
	if pr.V != persistVersion {
		return fmt.Errorf("plancache: journal record version %d, want %d", pr.V, persistVersion)
	}
	m := len(pr.Tasks)
	if m == 0 || len(pr.Weight) != m || len(pr.Plan) != m {
		return fmt.Errorf("plancache: journal record shape mismatch (m=%d)", m)
	}
	for i := range pr.Plan {
		if len(pr.Plan[i]) != m {
			return fmt.Errorf("plancache: journal record plan row %d has %d cols, want %d", i, len(pr.Plan[i]), m)
		}
	}
	in, err := lrp.NewInstance(pr.Tasks, pr.Weight)
	if err != nil {
		return fmt.Errorf("plancache: journal record instance invalid: %w", err)
	}
	plan := &lrp.Plan{X: pr.Plan}
	return c.putLocked(in, Params{K: pr.K, Form: pr.Form}, plan, false)
}

package exact

import (
	"context"
	"errors"
	"math"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// Engine adapts the branch-and-bound solver to the solve.Solver
// interface. Cancellation and deadlines are polled during node
// expansion; an interrupted search returns the incumbent with
// Stats.Interrupted set instead of an error. A search that completes
// within its budgets sets Stats.Proven.
type Engine struct {
	// MaxNodes bounds the search (0 = the package default). Exhausting
	// it is reported as an interruption, like a deadline.
	MaxNodes int64
}

// NewEngine returns an exact engine with the default node budget.
func NewEngine() *Engine { return &Engine{} }

// Name implements solve.Solver.
func (e *Engine) Name() string { return "exact" }

// Solve implements solve.Solver.
func (e *Engine) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("exact: nil model")
	}
	cfg := solve.NewConfig(opts...)
	stop := cfg.NewStop(ctx)
	start := cfg.Clock.Now()

	var progress func(nodes int64, best float64, feasible bool)
	if p := solve.SerialProgress(cfg.Progress); p != nil {
		progress = func(nodes int64, best float64, feasible bool) {
			p(solve.Event{Nodes: nodes, BestObjective: best, Feasible: feasible})
		}
	}
	r, err := solveWith(m, e.MaxNodes, stop.Func(), progress)
	outOfBudget := errors.Is(err, ErrNodeBudget)
	if err != nil && !outOfBudget {
		return nil, err
	}

	res := &solve.Result{
		Sample:    r.Best,
		Objective: r.Objective,
		Feasible:  r.Feasible,
		Stats: solve.Stats{
			Wall:             cfg.Clock.Since(start),
			Nodes:            r.Nodes,
			BoundPrunes:      r.BoundPrunes,
			InfeasiblePrunes: r.InfeasiblePrunes,
			Interrupted:      r.Interrupted || outOfBudget || stop.Interrupted(),
		},
	}
	res.Stats.Proven = !res.Stats.Interrupted
	if !r.Feasible && math.IsInf(r.Objective, 1) && r.Best == nil {
		// No incumbent: return an explicit empty (all-false) assignment
		// so the sample is still a complete, decodable state.
		res.Sample = make([]bool, m.NumVars())
		res.Objective = m.Objective(res.Sample)
	}
	cfg.Observe(e.Name(), res.Stats)
	return res, nil
}

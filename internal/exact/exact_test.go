package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cqm"
)

func bruteForce(m *cqm.Model) (float64, bool) {
	n := m.NumVars()
	best := math.Inf(1)
	found := false
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if !m.Feasible(x, 1e-9) {
			continue
		}
		found = true
		if obj := m.Objective(x); obj < best {
			best = obj
		}
	}
	return best, found
}

func randConstrainedModel(rng *rand.Rand, nv int) *cqm.Model {
	m := cqm.New()
	var sq, card cqm.LinExpr
	for i := 0; i < nv; i++ {
		v := m.AddBinary("x")
		if rng.Intn(2) == 0 {
			m.AddObjectiveLinear(v, float64(rng.Intn(9)-4))
		}
		sq.Add(v, float64(rng.Intn(7)-3))
		card.Add(v, 1)
	}
	sq.Offset = float64(rng.Intn(5) - 2)
	m.AddObjectiveSquared(sq)
	for k := 0; k < 2; k++ {
		a, b := cqm.VarID(rng.Intn(nv)), cqm.VarID(rng.Intn(nv))
		m.AddObjectiveQuad(a, b, float64(rng.Intn(7)-3))
	}
	senses := []cqm.Sense{cqm.Le, cqm.Ge, cqm.Eq}
	m.AddConstraint("card", card, senses[rng.Intn(3)], float64(rng.Intn(nv+1)))
	return m
}

func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randConstrainedModel(rng, 8)
		want, feasible := bruteForce(m)
		res, err := Solve(m, 0)
		if err != nil {
			return false
		}
		if res.Feasible != feasible {
			return false
		}
		if !feasible {
			return math.IsInf(res.Objective, 1)
		}
		if math.Abs(res.Objective-want) > 1e-9 {
			return false
		}
		// The reported assignment must actually achieve the optimum.
		return m.Feasible(res.Best, 1e-9) && math.Abs(m.Objective(res.Best)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInfeasibleModel(t *testing.T) {
	m := cqm.New()
	a := m.AddBinary("a")
	m.AddConstraint("c1", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Ge, 1)
	m.AddConstraint("c2", cqm.LinExpr{Terms: []cqm.Term{{Var: a, Coef: 1}}}, cqm.Le, 0)
	res, err := Solve(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || res.Best != nil {
		t.Fatalf("infeasible model reported feasible: %+v", res)
	}
}

func TestSolveNodeBudget(t *testing.T) {
	// A 24-variable partition problem cannot be solved in 10 nodes.
	m := cqm.New()
	var e cqm.LinExpr
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 24; i++ {
		v := m.AddBinary("x")
		e.Add(v, float64(1+rng.Intn(100)))
	}
	e.Offset = -500
	m.AddObjectiveSquared(e)
	_, err := Solve(m, 10)
	if err != ErrNodeBudget {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
}

func TestSolvePartitionOptimum(t *testing.T) {
	// Perfect partition: {1..8} against target 18 has objective 0.
	m := cqm.New()
	var e cqm.LinExpr
	for i := 1; i <= 8; i++ {
		v := m.AddBinary("x")
		e.Add(v, float64(i))
	}
	e.Offset = -18
	m.AddObjectiveSquared(e)
	res, err := Solve(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatalf("Objective = %v, want 0", res.Objective)
	}
	if res.Nodes <= 0 {
		t.Fatal("node counter not incremented")
	}
}

func TestSolveEmptyModel(t *testing.T) {
	m := cqm.New()
	m.AddObjectiveOffset(3)
	res, err := Solve(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 3 {
		t.Fatalf("empty model: %+v", res)
	}
}

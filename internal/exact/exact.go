// Package exact implements a depth-first branch-and-bound solver for
// small constrained quadratic models. It serves as ground truth for the
// heuristic solvers: on instances small enough to solve exactly, the
// hybrid solver's answers are cross-checked against this one in tests.
package exact

import (
	"errors"
	"math"

	"repro/internal/cqm"
)

// ErrNodeBudget is returned when the search exceeds its node budget
// before proving optimality.
var ErrNodeBudget = errors.New("exact: node budget exhausted")

// Result is the outcome of an exact solve.
type Result struct {
	// Best is an optimal feasible assignment (nil if none exists).
	Best []bool
	// Objective is the optimal objective value (+Inf if infeasible).
	Objective float64
	// Feasible reports whether any feasible assignment exists.
	Feasible bool
	// Nodes counts explored search nodes.
	Nodes int64
	// BoundPrunes counts subtrees cut because the objective bound could
	// not beat the incumbent.
	BoundPrunes int64
	// InfeasiblePrunes counts subtrees cut because no completion could
	// satisfy the constraints.
	InfeasiblePrunes int64
	// Interrupted reports that the search was cancelled before proving
	// optimality; Best then holds the incumbent (possibly nil).
	Interrupted bool
}

const tol = 1e-9

type solver struct {
	m           *cqm.Model
	n           int
	x           []bool
	maxNodes    int64
	nodes       int64
	boundPrunes int64
	infeasCuts  int64

	cons []consState
	lin  linState
	sqs  []sqState
	quad []cqm.QuadTerm

	best    []bool
	found   bool
	bestObj float64
	budget  bool // budget exceeded

	// stop is polled every stopEvery node expansions; once it returns
	// true the search unwinds, keeping the incumbent.
	stop     func() bool
	stopped  bool
	progress func(nodes int64, bestObjective float64, feasible bool)
}

// stopEvery is how many node expansions pass between stop polls and
// progress notifications: frequent enough for sub-millisecond reaction,
// rare enough to stay invisible next to the bound computations.
const stopEvery = 4096

// consState tracks one directional (<=) constraint half with suffix
// contribution bounds by depth.
type consState struct {
	coef           []float64 // per-variable coefficient (dense)
	rhs            float64
	cur            float64   // offset + assigned contributions
	sufMin, sufMax []float64 // remaining contribution bounds from depth d
	sense          cqm.Sense
}

type linState struct {
	coef   []float64
	cur    float64
	sufMin []float64
}

type sqState struct {
	coef           []float64
	cur            float64
	sufMin, sufMax []float64
}

func buildSuffix(coef []float64) (sufMin, sufMax []float64) {
	n := len(coef)
	sufMin = make([]float64, n+1)
	sufMax = make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		sufMin[d] = sufMin[d+1] + math.Min(0, coef[d])
		sufMax[d] = sufMax[d+1] + math.Max(0, coef[d])
	}
	return sufMin, sufMax
}

// Solve finds the optimal feasible assignment of m by branch and bound,
// exploring at most maxNodes nodes (0 means a default of 50 million). It
// returns ErrNodeBudget if the budget is exhausted before the search
// completes; the Result then holds the incumbent.
func Solve(m *cqm.Model, maxNodes int64) (Result, error) {
	return solveWith(m, maxNodes, nil, nil)
}

// solveWith is Solve plus the engine layer's cancellation hook and
// progress callback (see Engine).
func solveWith(m *cqm.Model, maxNodes int64, stop func() bool, progress func(nodes int64, bestObjective float64, feasible bool)) (Result, error) {
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	n := m.NumVars()
	s := &solver{
		m:        m,
		n:        n,
		x:        make([]bool, n),
		maxNodes: maxNodes,
		bestObj:  math.Inf(1),
		stop:     stop,
		progress: progress,
	}

	linear, quad, squares, offset := m.ObjectiveParts()
	s.lin.coef = make([]float64, n)
	for _, t := range linear {
		s.lin.coef[t.Var] += t.Coef
	}
	s.lin.cur = offset
	s.lin.sufMin = make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		s.lin.sufMin[d] = s.lin.sufMin[d+1] + math.Min(0, s.lin.coef[d])
	}
	s.quad = quad

	for i := range squares {
		st := sqState{coef: make([]float64, n), cur: squares[i].Offset}
		for _, t := range squares[i].Terms {
			st.coef[t.Var] += t.Coef
		}
		st.sufMin, st.sufMax = buildSuffix(st.coef)
		s.sqs = append(s.sqs, st)
	}

	for _, c := range m.Constraints() {
		st := consState{coef: make([]float64, n), rhs: c.RHS, cur: c.Expr.Offset, sense: c.Sense}
		for _, t := range c.Expr.Terms {
			st.coef[t.Var] += t.Coef
		}
		st.sufMin, st.sufMax = buildSuffix(st.coef)
		s.cons = append(s.cons, st)
	}

	s.dfs(0)

	res := Result{
		Nodes: s.nodes, Objective: s.bestObj, Feasible: s.found, Best: s.best,
		BoundPrunes: s.boundPrunes, InfeasiblePrunes: s.infeasCuts, Interrupted: s.stopped,
	}
	if s.found && res.Best == nil {
		res.Best = []bool{}
	}
	if s.budget {
		return res, ErrNodeBudget
	}
	return res, nil
}

// bound returns an admissible lower bound on the objective over all
// completions of the partial assignment at depth d.
func (s *solver) bound(d int) float64 {
	b := s.lin.cur + s.lin.sufMin[d]
	for i := range s.sqs {
		lo := s.sqs[i].cur + s.sqs[i].sufMin[d]
		hi := s.sqs[i].cur + s.sqs[i].sufMax[d]
		switch {
		case lo > 0:
			b += lo * lo
		case hi < 0:
			b += hi * hi
		}
	}
	for _, q := range s.quad {
		ai, bi := int(q.A), int(q.B)
		switch {
		case ai < d && bi < d:
			if s.x[ai] && s.x[bi] {
				b += q.Coef
			}
		case ai < d && !s.x[ai], bi < d && !s.x[bi]:
			// Pair already dead; contributes 0.
		default:
			b += math.Min(0, q.Coef)
		}
	}
	return b
}

// feasiblePossible reports whether any completion at depth d can satisfy
// all constraints.
func (s *solver) feasiblePossible(d int) bool {
	for i := range s.cons {
		c := &s.cons[i]
		lo := c.cur + c.sufMin[d]
		hi := c.cur + c.sufMax[d]
		switch c.sense {
		case cqm.Le:
			if lo > c.rhs+tol {
				return false
			}
		case cqm.Ge:
			if hi < c.rhs-tol {
				return false
			}
		case cqm.Eq:
			if lo > c.rhs+tol || hi < c.rhs-tol {
				return false
			}
		}
	}
	return true
}

func (s *solver) dfs(d int) {
	if s.budget || s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.budget = true
		return
	}
	if s.nodes%stopEvery == 0 {
		if s.progress != nil {
			s.progress(s.nodes, s.bestObj, s.found)
		}
		if s.stop != nil && s.stop() {
			s.stopped = true
			return
		}
	}
	if !s.feasiblePossible(d) {
		s.infeasCuts++
		return
	}
	if s.bound(d) >= s.bestObj-tol {
		s.boundPrunes++
		return
	}
	if d == s.n {
		obj := s.lin.cur
		for i := range s.sqs {
			obj += s.sqs[i].cur * s.sqs[i].cur
		}
		for _, q := range s.quad {
			if s.x[q.A] && s.x[q.B] {
				obj += q.Coef
			}
		}
		if obj < s.bestObj {
			s.bestObj = obj
			s.found = true
			s.best = append(s.best[:0], s.x...)
		}
		return
	}
	// Branch: try 0 first (keeps squares small in LRP models), then 1.
	s.x[d] = false
	s.dfs(d + 1)

	s.x[d] = true
	s.lin.cur += s.lin.coef[d]
	for i := range s.sqs {
		s.sqs[i].cur += s.sqs[i].coef[d]
	}
	for i := range s.cons {
		s.cons[i].cur += s.cons[i].coef[d]
	}
	s.dfs(d + 1)
	s.lin.cur -= s.lin.coef[d]
	for i := range s.sqs {
		s.sqs[i].cur -= s.sqs[i].coef[d]
	}
	for i := range s.cons {
		s.cons[i].cur -= s.cons[i].coef[d]
	}
	s.x[d] = false
}

package tabu

import (
	"math/rand"
	"testing"

	"repro/internal/cqm"
	"repro/internal/refeval"
)

// refSearch is the historical tabu Search implementation, verbatim, on
// the frozen reference evaluator. The golden test requires the rewritten
// CSR/bitset search to reproduce its trajectory exactly at fixed seeds.
func refSearch(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	if opt.Iterations <= 0 {
		opt.Iterations = 50 * max(1, n)
	}
	if opt.Tenure <= 0 {
		opt.Tenure = n/10 + 7
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	ev := refeval.New(m, opt.Penalty)
	state := make([]bool, n)
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}

	res := Result{}
	best := ev.Assignment()
	bestObj := ev.ObjectiveValue()
	bestFeas := ev.Feasible(feasTol)
	bestEnergy := ev.Energy()
	record := func() {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas, bestObj = feas, obj
			copy(best, ev.Assignment())
		}
	}
	if len(pool) == 0 {
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	tabuUntil := make([]int, n)
	for it := 1; it <= opt.Iterations; it++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		bestVar := cqm.VarID(-1)
		bestDelta := 0.0
		found := false
		for _, v := range pool {
			delta := ev.FlipDelta(v)
			if tabuUntil[v] >= it && ev.Energy()+delta >= bestEnergy-1e-12 {
				continue
			}
			if !found || delta < bestDelta || (delta == bestDelta && rng.Intn(2) == 0) {
				found = true
				bestVar, bestDelta = v, delta
			}
		}
		if !found {
			break
		}
		ev.Flip(bestVar)
		res.Moves++
		tabuUntil[bestVar] = it + opt.Tenure
		if e := ev.Energy(); e < bestEnergy {
			bestEnergy = e
		}
		record()
		if opt.Progress != nil {
			opt.Progress(it, bestObj, bestFeas)
		}
	}
	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

// goldenModel builds a small constrained model with dyadic fractional
// coefficients, on which the reference and rewritten evaluators perform
// exact arithmetic in lockstep.
func goldenModel(seed int64) *cqm.Model {
	rng := rand.New(rand.NewSource(seed))
	m := cqm.New()
	n := 10 + rng.Intn(16)
	vars := make([]cqm.VarID, n)
	for i := range vars {
		vars[i] = m.AddBinary("x")
	}
	coef := func() float64 { return float64(rng.Intn(13)-6) + 0.25*float64(rng.Intn(4)) }
	for k := 0; k < 2*n; k++ {
		m.AddObjectiveQuad(vars[rng.Intn(n)], vars[rng.Intn(n)], coef())
	}
	for k := 0; k < 2; k++ {
		var e cqm.LinExpr
		for t := 0; t < 3+rng.Intn(n/2); t++ {
			e.Add(vars[rng.Intn(n)], coef())
		}
		e.Offset = coef()
		m.AddObjectiveSquared(e)
	}
	for k := 0; k < 3; k++ {
		var e cqm.LinExpr
		for t := 0; t < 3+rng.Intn(n/2); t++ {
			e.Add(vars[rng.Intn(n)], coef())
		}
		m.AddConstraint("c", e, cqm.Sense(rng.Intn(3)), coef())
	}
	return m
}

func TestSearchMatchesGoldenTrajectory(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := goldenModel(300 + seed)
		variants := []struct {
			tag string
			opt Options
		}{
			{"plain", Options{Iterations: 200, Seed: seed, Penalty: 2}},
			{"short-tenure", Options{Iterations: 150, Tenure: 2, Seed: seed, Penalty: 1.5}},
			{"frozen", Options{Iterations: 150, Seed: seed, Penalty: 2,
				Frozen: map[cqm.VarID]bool{0: true, 3: false}}},
			{"warm-start", Options{Iterations: 100, Seed: seed, Penalty: 1,
				Initial: make([]bool, m.NumVars())}},
		}
		for _, v := range variants {
			want := refSearch(m, v.opt)
			got := Search(m, v.opt)
			compare := func(tag string, got Result) {
				t.Helper()
				if got.BestObjective != want.BestObjective ||
					got.BestFeasible != want.BestFeasible ||
					got.Moves != want.Moves {
					t.Errorf("%s: (objective, feasible, moves) = (%v, %v, %d), golden (%v, %v, %d)",
						tag, got.BestObjective, got.BestFeasible, got.Moves,
						want.BestObjective, want.BestFeasible, want.Moves)
				}
				for i := range want.Best {
					if got.Best[i] != want.Best[i] {
						t.Errorf("%s: Best[%d] = %v, golden %v", tag, i, got.Best[i], want.Best[i])
						break
					}
				}
			}
			compare(v.tag, got)
			// Pooled-scratch rerun must be identical.
			compare(v.tag+"/pooled-rerun", Search(m, v.opt))
		}
	}
}

package tabu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cqm"
)

func partitionModel(weights []float64, target float64) *cqm.Model {
	m := cqm.New()
	var e cqm.LinExpr
	for _, w := range weights {
		v := m.AddBinary("x")
		e.Add(v, w)
	}
	e.Offset = -target
	m.AddObjectiveSquared(e)
	return m
}

func TestSearchSolvesEasyPartition(t *testing.T) {
	m := partitionModel([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 18)
	res := Search(m, Options{Seed: 1})
	if !res.BestFeasible {
		t.Fatal("unconstrained model infeasible")
	}
	if res.BestObjective != 0 {
		t.Fatalf("objective %v, want 0", res.BestObjective)
	}
	if res.Moves == 0 {
		t.Fatal("no moves executed")
	}
}

func TestSearchEscapesLocalOptimaViaTabu(t *testing.T) {
	// Pure descent from the all-false state on this model stalls at a
	// local optimum for some targets; tabu search keeps moving. We just
	// require that tabu with a budget finds the global optimum from a
	// fixed bad start.
	m := partitionModel([]float64{10, 9, 8, 2, 2, 2, 2, 2}, 18)
	initial := make([]bool, 8)
	initial[0] = true // 10; greedy could park at 10+8 or similar
	res := Search(m, Options{Seed: 2, Initial: initial, Iterations: 2000})
	if res.BestObjective != 0 {
		t.Fatalf("objective %v, want 0 (e.g. 10+8 or 9+8+... sums to 18)", res.BestObjective)
	}
}

func TestSearchConstrainedFeasibility(t *testing.T) {
	m := cqm.New()
	var sum cqm.LinExpr
	for i := 0; i < 6; i++ {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, -float64(6-i))
		sum.Add(v, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, 2)
	res := Search(m, Options{Seed: 3, Penalty: 10})
	if !res.BestFeasible {
		t.Fatal("no feasible state found")
	}
	if res.BestObjective != -11 { // -6 + -5
		t.Fatalf("objective %v, want -11", res.BestObjective)
	}
}

func TestSearchRespectsFrozen(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5)
	res := Search(m, Options{Seed: 4, Frozen: map[cqm.VarID]bool{0: false}})
	if res.Best[0] {
		t.Fatal("flipped a frozen variable")
	}
	if res.BestObjective != 0 {
		t.Fatalf("objective %v, want 0 via {3,2}", res.BestObjective)
	}
}

func TestSearchAllFrozen(t *testing.T) {
	m := partitionModel([]float64{1, 2}, 3)
	res := Search(m, Options{Frozen: map[cqm.VarID]bool{0: true, 1: true}})
	if !res.Best[0] || !res.Best[1] || res.BestObjective != 0 {
		t.Fatalf("frozen state mishandled: %+v", res)
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	m := partitionModel([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 15)
	a := Search(m, Options{Seed: 7, Iterations: 300})
	b := Search(m, Options{Seed: 7, Iterations: 300})
	if a.BestObjective != b.BestObjective {
		t.Fatalf("nondeterministic: %v vs %v", a.BestObjective, b.BestObjective)
	}
}

func TestSearchMatchesBruteForceOnSmallModels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		m := cqm.New()
		var sq, all cqm.LinExpr
		for i := 0; i < n; i++ {
			v := m.AddBinary("x")
			m.AddObjectiveLinear(v, float64(rng.Intn(9)-4))
			sq.Add(v, float64(rng.Intn(5)-2))
			all.Add(v, 1)
		}
		m.AddObjectiveSquared(sq)
		m.AddConstraint("card", all, cqm.Le, float64(1+rng.Intn(n)))

		// Brute force.
		want := math.Inf(1)
		x := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := 0; i < n; i++ {
				x[i] = mask&(1<<i) != 0
			}
			if m.Feasible(x, 1e-9) {
				if obj := m.Objective(x); obj < want {
					want = obj
				}
			}
		}
		res := Search(m, Options{Seed: seed, Penalty: 5, Iterations: 1500})
		return res.BestFeasible && math.Abs(res.BestObjective-want) < 1e-9
	}
	// Pinned corpus: heuristic success within a budget is empirical.
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchEmptyModel(t *testing.T) {
	res := Search(cqm.New(), Options{})
	if !res.BestFeasible {
		t.Fatal("empty model should be trivially feasible")
	}
}

// Package tabu implements deterministic tabu search over constrained
// quadratic models. D-Wave's hybrid solvers run a portfolio of classical
// heuristics (simulated annealing, tabu search, ...) steered by QPU
// samples; this package provides the tabu member of that portfolio: a
// steepest-descent search with a recency-based tabu list and aspiration,
// complementing the stochastic annealer on landscapes where directed
// descent wins.
//
// Like the annealer, the search loop is allocation-free in steady state:
// runs borrow a pooled scratch bundle (evaluator, tabu clock, best-state
// bitset) and step over the model's flat CSR layout.
package tabu

import (
	"math/rand"
	"sync"

	"repro/internal/bits"
	"repro/internal/cqm"
)

// Options configures a search.
type Options struct {
	// Iterations is the number of moves (0 = 50 per variable).
	Iterations int
	// Tenure is how many iterations a flipped variable stays tabu
	// (0 = n/10 + 7).
	Tenure int
	// Penalty is the constraint-penalty weight of the evaluator.
	Penalty float64
	// Seed randomizes the initial state when Initial is nil.
	Seed int64
	// Initial is an optional warm start.
	Initial []bool
	// Frozen variables are never flipped.
	Frozen map[cqm.VarID]bool
	// Stop, when non-nil, is polled every iteration; once it returns
	// true the search winds down and the best state found so far is
	// still returned (see internal/solve).
	Stop func() bool
	// Progress, when non-nil, is called after every iteration with the
	// move count and the best objective/feasibility seen so far.
	Progress func(iteration int, bestObjective float64, feasible bool)
}

// Result mirrors the annealer's result shape.
type Result struct {
	// Best is the best assignment found (feasible preferred).
	Best []bool
	// BestObjective is the model objective of Best.
	BestObjective float64
	// BestFeasible reports whether Best satisfies every constraint.
	BestFeasible bool
	// Moves counts executed flips.
	Moves int64
}

const feasTol = 1e-6

// searchScratch is the reusable per-run state, pooled so repeated
// searches on one model allocate nothing after warm-up.
type searchScratch struct {
	ev        *cqm.Evaluator
	state     []bool
	pool      []cqm.VarID
	tabuUntil []int
	best      bits.Set
}

var scratchPool sync.Pool

func getScratch(m *cqm.Model, penalty float64) *searchScratch {
	if sc, _ := scratchPool.Get().(*searchScratch); sc != nil {
		if sc.ev.Model() == m && sc.ev.LayoutCurrent() {
			sc.ev.SetAllPenalties(penalty)
			for i := range sc.tabuUntil {
				sc.tabuUntil[i] = 0
			}
			return sc
		}
	}
	n := m.NumVars()
	return &searchScratch{
		ev:        cqm.NewEvaluator(m, penalty),
		state:     make([]bool, n),
		pool:      make([]cqm.VarID, 0, n),
		tabuUntil: make([]int, n),
		best:      bits.New(n),
	}
}

// searchRun is one search's hot state; its step method is
// allocation-free (asserted by the perf-gate tests).
type searchRun struct {
	ev     *cqm.Evaluator
	rng    *rand.Rand
	pool   []cqm.VarID
	tabu   []int
	tenure int

	best       bits.Set
	bestObj    float64
	bestFeas   bool
	bestEnergy float64

	moves int64
}

// record keeps the current state if it beats the best seen so far.
func (r *searchRun) record() {
	feas := r.ev.Feasible(feasTol)
	obj := r.ev.ObjectiveValue()
	if (feas && !r.bestFeas) || (feas == r.bestFeas && obj < r.bestObj) {
		r.bestFeas, r.bestObj = feas, obj
		r.best.CopyFrom(r.ev.Words())
	}
}

// step executes one iteration: the steepest admissible move over the
// whole pool (tabu moves admitted only under aspiration). It reports
// false when every move is tabu and nothing aspirates.
func (r *searchRun) step(it int) bool {
	ev, pool := r.ev, r.pool
	bestVar := cqm.VarID(-1)
	bestDelta := 0.0
	found := false
	for _, v := range pool {
		delta := ev.FlipDelta(v)
		if r.tabu[v] >= it && ev.Energy()+delta >= r.bestEnergy-1e-12 {
			continue
		}
		if !found || delta < bestDelta || (delta == bestDelta && r.rng.Intn(2) == 0) {
			found = true
			bestVar, bestDelta = v, delta
		}
	}
	if !found {
		return false
	}
	ev.CommitFlip(bestVar, bestDelta)
	r.moves++
	r.tabu[bestVar] = it + r.tenure
	if e := ev.Energy(); e < r.bestEnergy {
		r.bestEnergy = e
	}
	r.record()
	return true
}

// Search runs tabu search on m and returns the best assignment found.
func Search(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	if opt.Iterations <= 0 {
		opt.Iterations = 50 * max(1, n)
	}
	if opt.Tenure <= 0 {
		opt.Tenure = n/10 + 7
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	sc := getScratch(m, opt.Penalty)
	defer scratchPool.Put(sc)
	ev := sc.ev
	state := sc.state[:n]
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	pool := sc.pool[:0]
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}
	sc.pool = pool

	run := searchRun{
		ev:         ev,
		rng:        rng,
		pool:       pool,
		tabu:       sc.tabuUntil,
		tenure:     opt.Tenure,
		best:       sc.best,
		bestObj:    ev.ObjectiveValue(),
		bestFeas:   ev.Feasible(feasTol),
		bestEnergy: ev.Energy(),
	}
	run.best.CopyFrom(ev.Words())

	res := Result{}
	if len(pool) == 0 {
		res.Best = run.best.ToBools(n)
		res.BestObjective, res.BestFeasible = run.bestObj, run.bestFeas
		return res
	}

	for it := 1; it <= opt.Iterations; it++ {
		if opt.Stop != nil && opt.Stop() {
			break // interrupted: return the best state found so far
		}
		if !run.step(it) {
			break // everything tabu and nothing aspirates: stuck
		}
		if opt.Progress != nil {
			opt.Progress(it, run.bestObj, run.bestFeas)
		}
	}
	res.Moves = run.moves
	res.Best = run.best.ToBools(n)
	res.BestObjective, res.BestFeasible = run.bestObj, run.bestFeas
	return res
}

// Package tabu implements deterministic tabu search over constrained
// quadratic models. D-Wave's hybrid solvers run a portfolio of classical
// heuristics (simulated annealing, tabu search, ...) steered by QPU
// samples; this package provides the tabu member of that portfolio: a
// steepest-descent search with a recency-based tabu list and aspiration,
// complementing the stochastic annealer on landscapes where directed
// descent wins.
package tabu

import (
	"math/rand"

	"repro/internal/cqm"
)

// Options configures a search.
type Options struct {
	// Iterations is the number of moves (0 = 50 per variable).
	Iterations int
	// Tenure is how many iterations a flipped variable stays tabu
	// (0 = n/10 + 7).
	Tenure int
	// Penalty is the constraint-penalty weight of the evaluator.
	Penalty float64
	// Seed randomizes the initial state when Initial is nil.
	Seed int64
	// Initial is an optional warm start.
	Initial []bool
	// Frozen variables are never flipped.
	Frozen map[cqm.VarID]bool
	// Stop, when non-nil, is polled every iteration; once it returns
	// true the search winds down and the best state found so far is
	// still returned (see internal/solve).
	Stop func() bool
	// Progress, when non-nil, is called after every iteration with the
	// move count and the best objective/feasibility seen so far.
	Progress func(iteration int, bestObjective float64, feasible bool)
}

// Result mirrors the annealer's result shape.
type Result struct {
	// Best is the best assignment found (feasible preferred).
	Best []bool
	// BestObjective is the model objective of Best.
	BestObjective float64
	// BestFeasible reports whether Best satisfies every constraint.
	BestFeasible bool
	// Moves counts executed flips.
	Moves int64
}

const feasTol = 1e-6

// Search runs tabu search on m and returns the best assignment found.
func Search(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	if opt.Iterations <= 0 {
		opt.Iterations = 50 * max(1, n)
	}
	if opt.Tenure <= 0 {
		opt.Tenure = n/10 + 7
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	ev := cqm.NewEvaluator(m, opt.Penalty)
	state := make([]bool, n)
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}

	res := Result{}
	best := ev.Assignment()
	bestObj := ev.ObjectiveValue()
	bestFeas := ev.Feasible(feasTol)
	bestEnergy := ev.Energy()
	record := func() {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas, bestObj = feas, obj
			copy(best, ev.Assignment())
		}
	}
	if len(pool) == 0 {
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	tabuUntil := make([]int, n)
	for it := 1; it <= opt.Iterations; it++ {
		if opt.Stop != nil && opt.Stop() {
			break // interrupted: return the best state found so far
		}
		// Steepest admissible move: best delta among non-tabu variables;
		// a tabu move is admitted if it would beat the best energy seen
		// (aspiration).
		bestVar := cqm.VarID(-1)
		bestDelta := 0.0
		found := false
		for _, v := range pool {
			delta := ev.FlipDelta(v)
			if tabuUntil[v] >= it && ev.Energy()+delta >= bestEnergy-1e-12 {
				continue
			}
			if !found || delta < bestDelta || (delta == bestDelta && rng.Intn(2) == 0) {
				found = true
				bestVar, bestDelta = v, delta
			}
		}
		if !found {
			break // everything tabu and nothing aspirates: stuck
		}
		ev.Flip(bestVar)
		res.Moves++
		tabuUntil[bestVar] = it + opt.Tenure
		if e := ev.Energy(); e < bestEnergy {
			bestEnergy = e
		}
		record()
		if opt.Progress != nil {
			opt.Progress(it, bestObj, bestFeas)
		}
	}
	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

package tabu

import (
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

// TestPerfGateStepAllocFree is a CI gate: the steepest-descent step must
// not allocate.
func TestPerfGateStepAllocFree(t *testing.T) {
	m := benchModel()
	n := m.NumVars()
	sc := getScratch(m, 2)
	rng := rand.New(rand.NewSource(7))
	state := sc.state[:n]
	for i := range state {
		state[i] = rng.Intn(2) == 0
	}
	sc.ev.Reset(state)
	pool := sc.pool[:0]
	for i := 0; i < n; i++ {
		pool = append(pool, cqm.VarID(i))
	}
	sc.pool = pool
	run := searchRun{
		ev:         sc.ev,
		rng:        rng,
		pool:       pool,
		tabu:       sc.tabuUntil,
		tenure:     9,
		best:       sc.best,
		bestObj:    sc.ev.ObjectiveValue(),
		bestFeas:   sc.ev.Feasible(feasTol),
		bestEnergy: sc.ev.Energy(),
	}
	run.best.CopyFrom(sc.ev.Words())

	it := 0
	if allocs := testing.AllocsPerRun(100, func() {
		it++
		run.step(it)
	}); allocs != 0 {
		t.Errorf("step allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestPerfGateSearchSteadyStateAllocs is a CI gate: a full Search call
// with a pooled scratch performs only O(1) setup allocations.
func TestPerfGateSearchSteadyStateAllocs(t *testing.T) {
	m := benchModel()
	opt := Options{Iterations: 100, Seed: 3, Penalty: 2}
	Search(m, opt) // warm the scratch pool
	allocs := testing.AllocsPerRun(30, func() { Search(m, opt) })
	// Loose only to tolerate a GC emptying the sync.Pool mid-measurement;
	// steady state is ~4 (RNG source, RNG, Best slice).
	if allocs > 16 {
		t.Errorf("steady-state Search allocates %.1f allocs/run, want <= 16", allocs)
	}
}

// TestPerfGateMovesDeterministic is a CI gate: at a fixed seed the move
// count is exactly reproducible, so benchdiff can gate the moves metric
// across machines.
func TestPerfGateMovesDeterministic(t *testing.T) {
	m := benchModel()
	opt := Options{Iterations: 400, Seed: 1, Penalty: 2}
	first := Search(m, opt)
	if first.Moves == 0 {
		t.Fatalf("search made no moves")
	}
	for i := 0; i < 3; i++ {
		if got := Search(m, opt); got.Moves != first.Moves {
			t.Errorf("rerun %d: moves = %d, want %d", i, got.Moves, first.Moves)
		}
	}
}

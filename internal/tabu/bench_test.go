package tabu

import (
	"testing"

	"repro/internal/cqm"
)

// benchModel is a 256-variable constrained partition model, the same
// shape internal/sa benchmarks use.
func benchModel() *cqm.Model {
	m := cqm.New()
	var sq, cap cqm.LinExpr
	for i := 0; i < 256; i++ {
		v := m.AddBinary("x")
		sq.Add(v, float64(1+i%13))
		cap.Add(v, 1)
	}
	sq.Offset = -800
	m.AddObjectiveSquared(sq)
	m.AddConstraint("cap", cap, cqm.Le, 128)
	return m
}

// BenchmarkTabuSearch runs a fixed-seed search so the moves metric is
// deterministic (the same trajectory every iteration); CI gates on
// moves while moves/s stays advisory.
func BenchmarkTabuSearch(b *testing.B) {
	m := benchModel()
	var moves int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Search(m, Options{Iterations: 400, Seed: 1, Penalty: 2})
		moves += res.Moves
	}
	b.ReportMetric(float64(moves)/b.Elapsed().Seconds(), "moves/s")
	b.ReportMetric(float64(moves)/float64(b.N), "moves")
}

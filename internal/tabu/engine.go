package tabu

import (
	"context"
	"errors"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// Engine adapts tabu search to the solve.Solver interface. One solve
// runs solve.WithReads independent trajectories sequentially (tabu is
// deterministic per seed, so restarts differ only by their derived
// seeds); cancellation stops the current trajectory at its next
// iteration and skips the remaining ones.
type Engine struct {
	// Base is the per-trajectory configuration. Seed, Iterations, Stop
	// and Progress are overridden per solve.
	Base Options
}

// NewEngine returns a tabu engine with library defaults.
func NewEngine() *Engine { return &Engine{} }

// Name implements solve.Solver.
func (e *Engine) Name() string { return "tabu" }

// Solve implements solve.Solver.
func (e *Engine) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("tabu: nil model")
	}
	cfg := solve.NewConfig(opts...)
	stop := cfg.NewStop(ctx)
	start := cfg.Clock.Now()

	base := e.Base
	if cfg.HasSeed {
		base.Seed = cfg.Seed
	}
	if cfg.Sweeps > 0 {
		base.Iterations = cfg.Sweeps
	}
	base.Stop = stop.Func()
	reads := cfg.Reads
	if reads <= 0 {
		reads = 1
	}

	// Fast path: no free variables means an empty candidate move set —
	// the single reachable assignment is the answer. Return it with
	// populated Stats instead of spinning trajectories to the deadline.
	if x, ok := solve.FixedAssignment(m, base.Frozen); ok {
		res := &solve.Result{
			Sample:    x,
			Objective: m.Objective(x),
			Feasible:  m.Feasible(x, 1e-6),
			Stats:     solve.Stats{Wall: cfg.Clock.Since(start), Reads: 1, Proven: true},
		}
		cfg.Observe(e.Name(), res.Stats)
		return res, nil
	}
	progress := solve.SerialProgress(cfg.Progress)

	res := &solve.Result{}
	var best Result
	haveBest := false
	for r := 0; r < reads; r++ {
		if r > 0 && stop.Stopped() {
			break
		}
		o := base
		o.Seed = base.Seed*1_000_003 + int64(r)*7919 + 1
		if progress != nil {
			restart := r
			o.Progress = func(it int, bestObj float64, feas bool) {
				progress(solve.Event{Restart: restart, Sweep: it, BestObjective: bestObj, Feasible: feas})
			}
		}
		tr := Search(m, o)
		res.Stats.Reads++
		res.Stats.Flips += tr.Moves
		if tr.BestFeasible {
			res.Stats.FeasibleReads++
		}
		if !haveBest || better(tr, best) {
			best, haveBest = tr, true
		}
	}
	res.Sample = best.Best
	res.Objective = best.BestObjective
	res.Feasible = best.BestFeasible
	res.Stats.Wall = cfg.Clock.Since(start)
	res.Stats.Interrupted = stop.Interrupted()
	cfg.Observe(e.Name(), res.Stats)
	return res, nil
}

// better mirrors sa.Better for tabu results: feasible beats infeasible,
// then lower objective wins.
func better(a, b Result) bool {
	if a.BestFeasible != b.BestFeasible {
		return a.BestFeasible
	}
	return a.BestObjective < b.BestObjective
}

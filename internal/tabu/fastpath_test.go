package tabu

import (
	"context"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// TestEngineFastPathEmptyModel: an empty candidate move set must not
// spin trajectories to the deadline. The fake clock never advances, so
// only the fast path lets this test terminate.
func TestEngineFastPathEmptyModel(t *testing.T) {
	m := cqm.New()
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := NewEngine().Solve(context.Background(), m,
		solve.WithClock(clk), solve.WithBudget(time.Second), solve.WithReads(1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != 0 || !res.Feasible {
		t.Fatalf("empty-model result = %+v", res)
	}
	if !res.Stats.Proven || res.Stats.Reads != 1 || res.Stats.Interrupted {
		t.Fatalf("fast path Stats = %+v, want Proven, Reads 1, not interrupted", res.Stats)
	}
}

// TestEngineFastPathAllFrozen mirrors the sa fast path for tabu.
func TestEngineFastPathAllFrozen(t *testing.T) {
	m := cqm.New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	var count cqm.LinExpr
	count.Add(a, 1)
	count.Add(b, 1)
	m.AddConstraint("both", count, cqm.Eq, 2)

	eng := NewEngine()
	eng.Base.Frozen = map[cqm.VarID]bool{a: true, b: true}
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := eng.Solve(context.Background(), m, solve.WithClock(clk), solve.WithBudget(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sample[0] || !res.Sample[1] || !res.Feasible {
		t.Fatalf("result = %+v, want the frozen feasible assignment", res)
	}
	if !res.Stats.Proven {
		t.Fatalf("Stats = %+v, want Proven", res.Stats)
	}
}

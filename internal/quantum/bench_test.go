package quantum

import (
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

func benchQUBO(n int) *cqm.QUBO {
	rng := rand.New(rand.NewSource(3))
	q := &cqm.QUBO{
		NumVars:  n,
		BaseVars: n,
		Linear:   make([]float64, n),
		Quad:     make(map[cqm.QPair]float64),
	}
	for i := range q.Linear {
		q.Linear[i] = rng.Float64()*4 - 2
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				q.Quad[cqm.QPair{A: cqm.VarID(i), B: cqm.VarID(j)}] = rng.Float64()*2 - 1
			}
		}
	}
	return q
}

func BenchmarkEnergyTable16(b *testing.B) {
	q := benchQUBO(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnergyTable(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQAOAEvolve12(b *testing.B) {
	q := benchQUBO(12)
	a, err := NewQAOA(q, 2)
	if err != nil {
		b.Fatal(err)
	}
	params := []float64{0.1, 0.2, 0.3, 0.15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Evolve(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRXGate16(b *testing.B) {
	s, err := Uniform(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RX(i%16, 0.3)
	}
}

func BenchmarkSample(b *testing.B) {
	s, _ := Uniform(14)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng, 128)
	}
}

package quantum

import (
	"fmt"

	"repro/internal/cqm"
)

// Resources estimates what a QAOA circuit for a QUBO would cost on a
// real gate-model device — the resource-accounting view behind the
// paper's Section VI scalability discussion. The cost layer of a QUBO
// Hamiltonian compiles to one RZ per linear term and one ZZ interaction
// (typically CNOT-RZ-CNOT) per quadratic coupler; the mixer is one RX
// per qubit per layer.
type Resources struct {
	// Qubits is the register width.
	Qubits int
	// Layers is the QAOA depth p.
	Layers int
	// SingleQubitGates counts H (state prep) + RZ + RX gates.
	SingleQubitGates int
	// TwoQubitGates counts CNOTs (2 per coupler per layer).
	TwoQubitGates int
	// Couplers is the number of distinct ZZ interactions, the
	// connectivity the device (or its embedding) must provide.
	Couplers int
}

// EstimateResources computes the gate counts for depth-p QAOA over q.
func EstimateResources(q *cqm.QUBO, layers int) (Resources, error) {
	if layers < 1 {
		return Resources{}, fmt.Errorf("quantum: need at least one layer, got %d", layers)
	}
	if q.NumVars < 1 {
		return Resources{}, fmt.Errorf("quantum: empty QUBO")
	}
	linear := 0
	for _, c := range q.Linear {
		if c != 0 {
			linear++
		}
	}
	couplers := q.NumQuadTerms()
	r := Resources{
		Qubits:   q.NumVars,
		Layers:   layers,
		Couplers: couplers,
		// H per qubit (prep) + per layer: RZ per linear term, one RZ
		// inside each ZZ gadget, RX per qubit.
		SingleQubitGates: q.NumVars + layers*(linear+couplers+q.NumVars),
		TwoQubitGates:    layers * 2 * couplers,
	}
	return r, nil
}

// String renders a compact summary.
func (r Resources) String() string {
	return fmt.Sprintf("QAOA p=%d: %d qubits, %d couplers, %d 1q gates, %d 2q gates",
		r.Layers, r.Qubits, r.Couplers, r.SingleQubitGates, r.TwoQubitGates)
}

package quantum

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cqm"
	"repro/internal/optimize"
)

// EnergyTable evaluates a QUBO on every basis state, producing the
// diagonal cost Hamiltonian used by the QAOA phase layer. Memory and
// time are O(2^n); callers must respect MaxQubits.
func EnergyTable(q *cqm.QUBO) ([]float64, error) {
	n := q.NumVars
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("quantum: QUBO with %d variables outside [1,%d]", n, MaxQubits)
	}
	size := 1 << n
	e := make([]float64, size)
	for z := range e {
		e[z] = q.Offset
	}
	for i, c := range q.Linear {
		if c == 0 {
			continue
		}
		bit := 1 << i
		for base := 0; base < size; base += bit << 1 {
			for z := base + bit; z < base+(bit<<1); z++ {
				e[z] += c
			}
		}
	}
	for pair, c := range q.Quad {
		mask := 1<<pair.A | 1<<pair.B
		for z := 0; z < size; z++ {
			if z&mask == mask {
				e[z] += c
			}
		}
	}
	return e, nil
}

// QAOA is the Quantum Approximate Optimization Algorithm over a QUBO's
// diagonal Hamiltonian: p alternating layers of cost-phase and
// transverse-field mixer evolution, with 2p variational parameters
// (gamma_1..gamma_p, beta_1..beta_p) optimized classically.
type QAOA struct {
	// Layers is the circuit depth p.
	Layers int

	n        int
	energies []float64
	// Emin and Emax bound the energy table (for diagnostics and
	// approximation-ratio reporting).
	Emin, Emax float64
}

// NewQAOA prepares a QAOA instance for the QUBO with depth layers.
func NewQAOA(q *cqm.QUBO, layers int) (*QAOA, error) {
	if layers < 1 {
		return nil, fmt.Errorf("quantum: QAOA needs at least one layer, got %d", layers)
	}
	energies, err := EnergyTable(q)
	if err != nil {
		return nil, err
	}
	a := &QAOA{Layers: layers, n: q.NumVars, energies: energies, Emin: math.Inf(1), Emax: math.Inf(-1)}
	for _, e := range energies {
		a.Emin = math.Min(a.Emin, e)
		a.Emax = math.Max(a.Emax, e)
	}
	return a, nil
}

// NumQubits returns the register width.
func (a *QAOA) NumQubits() int { return a.n }

// Evolve runs the circuit |+>^n -> prod_l [mixer(beta_l) cost(gamma_l)]
// for params = (gamma_1..gamma_p, beta_1..beta_p).
func (a *QAOA) Evolve(params []float64) (*State, error) {
	if len(params) != 2*a.Layers {
		return nil, fmt.Errorf("quantum: QAOA depth %d needs %d parameters, got %d", a.Layers, 2*a.Layers, len(params))
	}
	s, err := Uniform(a.n)
	if err != nil {
		return nil, err
	}
	for l := 0; l < a.Layers; l++ {
		gamma, beta := params[l], params[a.Layers+l]
		s.PhaseByEnergy(a.energies, gamma)
		for q := 0; q < a.n; q++ {
			s.RX(q, 2*beta)
		}
	}
	return s, nil
}

// Expectation returns the cost expectation of the circuit output — the
// objective the classical optimizer minimizes.
func (a *QAOA) Expectation(params []float64) float64 {
	s, err := a.Evolve(params)
	if err != nil {
		return math.Inf(1)
	}
	return s.ExpectationDiagonal(a.energies)
}

// OptimizeOptions tunes the classical parameter search.
type OptimizeOptions struct {
	// GridSamples is the per-axis resolution of the depth-1 seeding
	// grid (0 = 8).
	GridSamples int
	// NelderMead refines from the grid seed.
	NelderMead optimize.Options
	// Stop, when non-nil, cancels the parameter search: grid cells
	// evaluated after it trips score +Inf (skipping the circuit), and
	// the Nelder-Mead refinement winds down at its next step. The best
	// parameters found so far are still returned (see internal/solve).
	Stop func() bool
}

// Optimize finds good variational parameters: a coarse grid over the
// first (gamma, beta) pair seeds Nelder-Mead over all 2p parameters.
// The energy scale of gamma is normalized by the Hamiltonian's spread.
func (a *QAOA) Optimize(opt OptimizeOptions) (optimize.Result, error) {
	if opt.GridSamples <= 0 {
		opt.GridSamples = 8
	}
	spread := a.Emax - a.Emin
	if spread <= 0 {
		// Flat Hamiltonian: any parameters are optimal.
		params := make([]float64, 2*a.Layers)
		return optimize.Result{X: params, F: a.Emin, Converged: true}, nil
	}
	// Gamma's useful range scales inversely with the typical energy
	// gap; normalize by the spread per qubit so problems of any
	// absolute scale search the same window.
	gHi := math.Pi / math.Max(1e-9, spread/float64(a.n))
	seed, err := optimize.GridSearch(func(x []float64) float64 {
		if opt.Stop != nil && opt.Stop() {
			return math.Inf(1)
		}
		params := make([]float64, 2*a.Layers)
		for l := 0; l < a.Layers; l++ {
			f := float64(l+1) / float64(a.Layers)
			params[l] = x[0] * f                                        // gammas ramp up
			params[a.Layers+l] = x[1] * (1 - f + 1/float64(2*a.Layers)) // betas ramp down
		}
		return a.Expectation(params)
	}, []float64{gHi / 64, 0.05}, []float64{gHi, math.Pi / 2}, opt.GridSamples)
	if err != nil {
		return optimize.Result{}, err
	}
	start := make([]float64, 2*a.Layers)
	for l := 0; l < a.Layers; l++ {
		f := float64(l+1) / float64(a.Layers)
		start[l] = seed.X[0] * f
		start[a.Layers+l] = seed.X[1] * (1 - f + 1/float64(2*a.Layers))
	}
	nm := opt.NelderMead
	if nm.Step == 0 {
		nm.Step = seed.X[1] / 4
	}
	if nm.Stop == nil {
		nm.Stop = opt.Stop
	}
	res, err := optimize.NelderMead(a.Expectation, start, nm)
	if err != nil {
		return optimize.Result{}, err
	}
	res.Evals += seed.Evals
	return res, nil
}

// SampleResult is the outcome of measuring an optimized QAOA state.
type SampleResult struct {
	// Best is the lowest-energy assignment among the shots.
	Best []bool
	// BestEnergy is its QUBO energy.
	BestEnergy float64
	// GroundProbability is the total probability mass the state puts on
	// globally optimal assignments.
	GroundProbability float64
	// ApproxRatio is (Emax - E[sampled best]) / (Emax - Emin), 1 at the
	// optimum.
	ApproxRatio float64
}

// Sample measures the circuit output shots times and returns the best
// observed assignment plus quality diagnostics.
func (a *QAOA) Sample(params []float64, shots int, rng *rand.Rand) (SampleResult, error) {
	s, err := a.Evolve(params)
	if err != nil {
		return SampleResult{}, err
	}
	res := SampleResult{BestEnergy: math.Inf(1)}
	for _, z := range s.Sample(rng, shots) {
		if e := a.energies[z]; e < res.BestEnergy {
			res.BestEnergy = e
			res.Best = Bits(z, a.n)
		}
	}
	for z, e := range a.energies {
		if e <= a.Emin+1e-12 {
			res.GroundProbability += s.Probability(z)
		}
	}
	if a.Emax > a.Emin {
		res.ApproxRatio = (a.Emax - res.BestEnergy) / (a.Emax - a.Emin)
	} else {
		res.ApproxRatio = 1
	}
	return res, nil
}

package quantum

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// Diagnostics carries the gate-path quality metrics that have no slot in
// the shared solve.Stats shape; Engine records them for its most recent
// Solve.
type Diagnostics struct {
	// Qubits is the simulated register width (QUBO variables incl.
	// slacks, if any).
	Qubits int
	// Layers is the QAOA depth used.
	Layers int
	// Expectation is the optimized cost expectation.
	Expectation float64
	// ApproxRatio and GroundProbability are quality diagnostics of the
	// sampled state (see SampleResult).
	ApproxRatio       float64
	GroundProbability float64
}

// Engine adapts the simulated gate-model (QAOA) path to the
// solve.Solver interface: CQM -> QUBO (penalty folding) -> QAOA
// parameter search -> measurement -> feasibility filter. Cancellation
// stops the variational parameter search at its next optimizer step and
// skips the circuit for unevaluated grid cells; measurement of the best
// parameters found so far still runs, so an interrupted solve returns a
// usable (if lower-quality) sample with Stats.Interrupted set.
//
// Only models whose QUBO fits the state-vector simulator (MaxQubits)
// are solvable; larger models return an error.
type Engine struct {
	// Layers is the circuit depth p (0 = 2).
	Layers int
	// Shots is the number of measurement samples (0 = 512); overridden
	// by solve.WithReads.
	Shots int
	// QUBO controls the constraint folding; the zero value selects
	// unbalanced penalization, which adds no slack qubits.
	QUBO cqm.QUBOOptions
	// Optimize tunes the classical parameter search.
	Optimize OptimizeOptions
	// Last holds the diagnostics of the most recent Solve. It is not
	// synchronized: share one Engine per goroutine.
	Last Diagnostics
}

// NewEngine returns a gate-path engine with library defaults.
func NewEngine() *Engine { return &Engine{} }

// Name implements solve.Solver.
func (e *Engine) Name() string { return "quantum" }

// Solve implements solve.Solver.
func (e *Engine) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("quantum: nil model")
	}
	cfg := solve.NewConfig(opts...)
	stop := cfg.NewStop(ctx)
	start := cfg.Clock.Now()

	layers := e.Layers
	if layers <= 0 {
		layers = 2
	}
	shots := e.Shots
	if cfg.Reads > 0 {
		shots = cfg.Reads
	}
	if shots <= 0 {
		shots = 512
	}
	qopt := e.QUBO
	if qopt.EqPenalty == 0 {
		qopt = cqm.QUBOOptions{
			Method:       cqm.UnbalancedPenalty,
			EqPenalty:    20,
			UnbalancedL1: 1,
			UnbalancedL2: 20,
		}
	}

	qubo, err := cqm.ToQUBO(m, qopt)
	if err != nil {
		return nil, fmt.Errorf("quantum: QUBO conversion: %w", err)
	}
	if qubo.NumVars > MaxQubits {
		return nil, fmt.Errorf("quantum: model needs %d qubits, gate simulator supports %d",
			qubo.NumVars, MaxQubits)
	}
	qa, err := NewQAOA(qubo, layers)
	if err != nil {
		return nil, err
	}
	oopt := e.Optimize
	if oopt.Stop == nil {
		oopt.Stop = stop.Func()
	}
	progress := solve.SerialProgress(cfg.Progress)
	params, err := qa.Optimize(oopt)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress(solve.Event{Sweep: params.Evals, BestObjective: params.F})
	}
	state, err := qa.Evolve(params.X)
	if err != nil {
		return nil, err
	}

	e.Last = Diagnostics{Qubits: qubo.NumVars, Layers: layers, Expectation: params.F}

	// Feasibility filter over the shots: prefer the lowest-QUBO-energy
	// sample whose base assignment satisfies the original CQM.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var bestFeas, bestAny []bool
	bestFeasE, bestAnyE := 0.0, 0.0
	for _, z := range state.Sample(rng, shots) {
		bits := Bits(z, qubo.NumVars)
		energy := qubo.Energy(bits)
		base := bits[:qubo.BaseVars]
		if bestAny == nil || energy < bestAnyE {
			bestAny, bestAnyE = base, energy
		}
		if m.Feasible(base, 1e-6) && (bestFeas == nil || energy < bestFeasE) {
			bestFeas, bestFeasE = base, energy
		}
	}
	sample := bestAny
	feasible := false
	if bestFeas != nil {
		sample, feasible = bestFeas, true
	}
	if sr, err := qa.Sample(params.X, 1, rng); err == nil {
		e.Last.GroundProbability = sr.GroundProbability
		if sr.ApproxRatio >= 0 {
			e.Last.ApproxRatio = sr.ApproxRatio
		}
	}
	if sample == nil {
		sample = make([]bool, m.NumVars())
	}

	res := &solve.Result{
		Sample:    sample,
		Objective: m.Objective(sample),
		Feasible:  feasible && !math.IsNaN(bestFeasE),
		Stats: solve.Stats{
			Wall:        cfg.Clock.Since(start),
			Reads:       shots,
			Evals:       params.Evals,
			Interrupted: stop.Interrupted(),
		},
	}
	if feasible {
		res.Stats.FeasibleReads = 1
	}
	if progress != nil {
		progress(solve.Event{Sweep: params.Evals, BestObjective: res.Objective, Feasible: res.Feasible})
	}
	cfg.Observe(e.Name(), res.Stats)
	return res, nil
}

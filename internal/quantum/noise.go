package quantum

import "math/rand"

// NoiseModel captures the two dominant error channels of near-term
// devices at the measurement-statistics level — the scalability concern
// the paper raises for larger problem sizes ("noise and error mitigation
// models must also be considered as we increase the problem size"):
//
//   - Depolarizing: with this probability a shot is replaced by a
//     uniformly random basis state (the effect of a global depolarizing
//     channel on the output distribution);
//   - Readout: each measured bit flips independently with this
//     probability (classical readout error).
type NoiseModel struct {
	Depolarizing float64
	Readout      float64
}

// Valid reports whether the probabilities are in [0, 1].
func (n NoiseModel) Valid() bool {
	return n.Depolarizing >= 0 && n.Depolarizing <= 1 && n.Readout >= 0 && n.Readout <= 1
}

// SampleNoisy draws shots from the state's measurement distribution and
// corrupts them with the noise model. A zero-valued model reproduces
// Sample exactly (same RNG consumption for the underlying draw).
func (s *State) SampleNoisy(rng *rand.Rand, shots int, noise NoiseModel) []int {
	out := s.Sample(rng, shots)
	if noise.Depolarizing == 0 && noise.Readout == 0 {
		return out
	}
	size := len(s.amp)
	for i, z := range out {
		if noise.Depolarizing > 0 && rng.Float64() < noise.Depolarizing {
			out[i] = rng.Intn(size)
			continue
		}
		if noise.Readout > 0 {
			for q := 0; q < s.n; q++ {
				if rng.Float64() < noise.Readout {
					z ^= 1 << q
				}
			}
			out[i] = z
		}
	}
	return out
}

// SampleNoisy measures the optimized circuit under a noise model and
// returns the best observed assignment plus diagnostics. Compared to the
// noiseless Sample, GroundProbability here is the *empirical* fraction
// of shots that hit a ground state, since the analytic state no longer
// describes what the device reports.
func (a *QAOA) SampleNoisy(params []float64, shots int, rng *rand.Rand, noise NoiseModel) (SampleResult, error) {
	s, err := a.Evolve(params)
	if err != nil {
		return SampleResult{}, err
	}
	res := SampleResult{BestEnergy: a.Emax}
	ground := 0
	first := true
	for _, z := range s.SampleNoisy(rng, shots, noise) {
		e := a.energies[z]
		if first || e < res.BestEnergy {
			res.BestEnergy = e
			res.Best = Bits(z, a.n)
			first = false
		}
		if e <= a.Emin+1e-12 {
			ground++
		}
	}
	if shots > 0 {
		res.GroundProbability = float64(ground) / float64(shots)
	}
	if a.Emax > a.Emin {
		res.ApproxRatio = (a.Emax - res.BestEnergy) / (a.Emax - a.Emin)
	} else {
		res.ApproxRatio = 1
	}
	return res, nil
}

package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cqm"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewStateBasics(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Fatal("accepted 0 qubits")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Fatal("accepted too many qubits")
	}
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 3 || !almostEqual(s.Probability(0), 1) {
		t.Fatalf("initial state wrong: P(0)=%v", s.Probability(0))
	}
	if !almostEqual(s.Norm(), 1) {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestUniformState(t *testing.T) {
	s, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 16; z++ {
		if !almostEqual(s.Probability(z), 1.0/16) {
			t.Fatalf("P(%d) = %v", z, s.Probability(z))
		}
	}
}

func TestHadamardInvolution(t *testing.T) {
	s, _ := NewState(2)
	s.H(0)
	s.H(1)
	s.H(0)
	s.H(1)
	if !almostEqual(s.Probability(0), 1) {
		t.Fatalf("H^2 != I: P(0) = %v", s.Probability(0))
	}
}

func TestXAndRXGates(t *testing.T) {
	s, _ := NewState(2)
	s.X(1)
	if !almostEqual(s.Probability(0b10), 1) {
		t.Fatalf("X(1)|00> wrong: %v", s.Probability(0b10))
	}
	// RX(pi) is X up to global phase.
	s2, _ := NewState(1)
	s2.RX(0, math.Pi)
	if !almostEqual(s2.Probability(1), 1) {
		t.Fatalf("RX(pi)|0> -> P(1) = %v", s2.Probability(1))
	}
	// RX(pi/2) gives a 50/50 split.
	s3, _ := NewState(1)
	s3.RX(0, math.Pi/2)
	if !almostEqual(s3.Probability(0), 0.5) {
		t.Fatalf("RX(pi/2) split = %v", s3.Probability(0))
	}
}

func TestRZPhasesOnly(t *testing.T) {
	s, _ := Uniform(2)
	s.RZ(0, 1.234)
	s.RZ(1, -0.7)
	for z := 0; z < 4; z++ {
		if !almostEqual(s.Probability(z), 0.25) {
			t.Fatalf("RZ changed probabilities: P(%d)=%v", z, s.Probability(z))
		}
	}
	// But relative phases changed: amplitudes differ.
	if cmplx.Abs(s.Amplitude(0)-s.Amplitude(1)) < 1e-9 {
		t.Fatal("RZ applied no relative phase")
	}
}

func TestCNOTTruthTable(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0b00, 0b00}, {0b01, 0b11}, {0b10, 0b10}, {0b11, 0b01},
	} {
		s, _ := NewState(2)
		// Prepare |in> (qubit 0 = control).
		if tc.in&1 != 0 {
			s.X(0)
		}
		if tc.in&2 != 0 {
			s.X(1)
		}
		s.CNOT(0, 1)
		if !almostEqual(s.Probability(tc.want), 1) {
			t.Fatalf("CNOT|%02b> -> P(%02b) = %v", tc.in, tc.want, s.Probability(tc.want))
		}
	}
}

func TestBellStateEntanglement(t *testing.T) {
	s, _ := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	if !almostEqual(s.Probability(0b00), 0.5) || !almostEqual(s.Probability(0b11), 0.5) {
		t.Fatalf("Bell state probs: %v %v", s.Probability(0), s.Probability(3))
	}
	if s.Probability(0b01) > 1e-12 || s.Probability(0b10) > 1e-12 {
		t.Fatal("Bell state has weight on odd-parity terms")
	}
}

func TestUnitarityProperty(t *testing.T) {
	// Random circuits preserve the norm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewState(4)
		if err != nil {
			return false
		}
		for k := 0; k < 30; k++ {
			q := rng.Intn(4)
			switch rng.Intn(5) {
			case 0:
				s.H(q)
			case 1:
				s.X(q)
			case 2:
				s.RX(q, rng.Float64()*2*math.Pi)
			case 3:
				s.RZ(q, rng.Float64()*2*math.Pi)
			case 4:
				t := rng.Intn(4)
				if t != q {
					s.CNOT(q, t)
				}
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseByEnergyKeepsProbabilities(t *testing.T) {
	s, _ := Uniform(3)
	energies := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	s.PhaseByEnergy(energies, 0.3)
	for z := 0; z < 8; z++ {
		if !almostEqual(s.Probability(z), 1.0/8) {
			t.Fatalf("phase layer changed P(%d) to %v", z, s.Probability(z))
		}
	}
	if !almostEqual(s.Norm(), 1) {
		t.Fatal("phase layer broke normalization")
	}
}

func TestExpectationDiagonal(t *testing.T) {
	s, _ := Uniform(2)
	energies := []float64{1, 2, 3, 4}
	if got := s.ExpectationDiagonal(energies); !almostEqual(got, 2.5) {
		t.Fatalf("uniform expectation = %v, want 2.5", got)
	}
	s2, _ := NewState(2)
	s2.X(0) // |01> (z=1)
	if got := s2.ExpectationDiagonal(energies); !almostEqual(got, 2) {
		t.Fatalf("basis expectation = %v, want 2", got)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	s, _ := NewState(2)
	s.RX(0, math.Pi/2) // 50/50 on qubit 0, qubit 1 stays 0
	rng := rand.New(rand.NewSource(5))
	counts := make(map[int]int)
	const shots = 20000
	for _, z := range s.Sample(rng, shots) {
		counts[z]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("sampled impossible states: %v", counts)
	}
	frac := float64(counts[0]) / shots
	if frac < 0.46 || frac > 0.54 {
		t.Fatalf("P(0) sampled as %v, want ~0.5", frac)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	bits := Bits(0b1011, 4)
	want := []bool{true, true, false, true}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("Bits = %v", bits)
		}
	}
}

// smallQUBO builds a 2-variable QUBO with ground state |11>:
// E = 2 - x0 - x1 - 0.5 x0 x1 (E(11) = -0.5... offsets chosen so the
// values are distinct).
func smallQUBO() *cqm.QUBO {
	return &cqm.QUBO{
		NumVars:  2,
		BaseVars: 2,
		Linear:   []float64{-1, -1},
		Quad:     map[cqm.QPair]float64{{A: 0, B: 1}: -0.5},
		Offset:   2,
	}
}

func TestEnergyTableMatchesQUBO(t *testing.T) {
	q := smallQUBO()
	table, err := EnergyTable(q)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 4; z++ {
		if got, want := table[z], q.Energy(Bits(z, 2)); !almostEqual(got, want) {
			t.Fatalf("E[%d] = %v, want %v", z, got, want)
		}
	}
}

func TestEnergyTableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		q := &cqm.QUBO{
			NumVars:  n,
			BaseVars: n,
			Linear:   make([]float64, n),
			Quad:     make(map[cqm.QPair]float64),
			Offset:   float64(rng.Intn(7) - 3),
		}
		for i := range q.Linear {
			q.Linear[i] = float64(rng.Intn(9) - 4)
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			q.Quad[cqm.QPair{A: cqm.VarID(a), B: cqm.VarID(b)}] += float64(rng.Intn(7) - 3)
		}
		table, err := EnergyTable(q)
		if err != nil {
			return false
		}
		for z := range table {
			if !almostEqual(table[z], q.Energy(Bits(z, n))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyTableRejectsBigQUBO(t *testing.T) {
	q := &cqm.QUBO{NumVars: MaxQubits + 1}
	if _, err := EnergyTable(q); err == nil {
		t.Fatal("accepted oversized QUBO")
	}
}

func TestQAOAValidation(t *testing.T) {
	if _, err := NewQAOA(smallQUBO(), 0); err == nil {
		t.Fatal("accepted 0 layers")
	}
	a, err := NewQAOA(smallQUBO(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evolve([]float64{1}); err == nil {
		t.Fatal("accepted wrong parameter count")
	}
	if a.NumQubits() != 2 {
		t.Fatal("qubit count")
	}
}

func TestQAOAZeroParamsIsUniform(t *testing.T) {
	a, err := NewQAOA(smallQUBO(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// gamma = beta = 0: expectation equals the uniform average.
	got := a.Expectation([]float64{0, 0})
	table, _ := EnergyTable(smallQUBO())
	want := 0.0
	for _, e := range table {
		want += e / float64(len(table))
	}
	if !almostEqual(got, want) {
		t.Fatalf("zero-parameter expectation %v, want %v", got, want)
	}
}

func TestQAOAOptimizeBeatsUniform(t *testing.T) {
	a, err := NewQAOA(smallQUBO(), 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform := a.Expectation([]float64{0, 0})
	res, err := a.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F >= uniform {
		t.Fatalf("optimized expectation %v not below uniform %v", res.F, uniform)
	}
	// Sampling the optimized state finds the ground state |11>.
	rng := rand.New(rand.NewSource(2))
	sr, err := a.Sample(res.X, 256, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Best[0] || !sr.Best[1] {
		t.Fatalf("best sample %v, want [true true]", sr.Best)
	}
	if !almostEqual(sr.ApproxRatio, 1) {
		t.Fatalf("approx ratio %v", sr.ApproxRatio)
	}
	if sr.GroundProbability <= 0.25 {
		t.Fatalf("ground probability %v not amplified above uniform", sr.GroundProbability)
	}
}

func TestQAOADeeperHelps(t *testing.T) {
	// A 4-variable partition-style QUBO; p=2 should do at least as well
	// as p=1 after optimization.
	q := &cqm.QUBO{
		NumVars: 4, BaseVars: 4,
		Linear: []float64{-3, -2, -2, -1},
		Quad: map[cqm.QPair]float64{
			{A: 0, B: 1}: 2, {A: 0, B: 2}: 2, {A: 1, B: 2}: 2, {A: 2, B: 3}: 2,
		},
		Offset: 3,
	}
	a1, err := NewQAOA(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewQAOA(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.F > r1.F+0.05*(math.Abs(r1.F)+1) {
		t.Fatalf("p=2 (%v) notably worse than p=1 (%v)", r2.F, r1.F)
	}
}

func TestQAOAFlatHamiltonian(t *testing.T) {
	q := &cqm.QUBO{NumVars: 2, BaseVars: 2, Linear: []float64{0, 0}, Quad: map[cqm.QPair]float64{}, Offset: 5}
	a, err := NewQAOA(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.F, 5) {
		t.Fatalf("flat optimize F = %v", res.F)
	}
}

package quantum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

func TestNoiseModelValid(t *testing.T) {
	if !(NoiseModel{}).Valid() {
		t.Fatal("zero model invalid")
	}
	if (NoiseModel{Depolarizing: 1.5}).Valid() || (NoiseModel{Readout: -0.1}).Valid() {
		t.Fatal("out-of-range model accepted")
	}
}

func TestSampleNoisyZeroNoiseMatchesClean(t *testing.T) {
	s, _ := NewState(3)
	s.H(0)
	s.H(2)
	a := s.SampleNoisy(rand.New(rand.NewSource(9)), 500, NoiseModel{})
	b := s.Sample(rand.New(rand.NewSource(9)), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shot %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSampleNoisyFullDepolarizationIsUniform(t *testing.T) {
	// A deterministic |000> state under full depolarization samples
	// (approximately) uniformly.
	s, _ := NewState(3)
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 8)
	const shots = 16000
	for _, z := range s.SampleNoisy(rng, shots, NoiseModel{Depolarizing: 1}) {
		counts[z]++
	}
	for z, c := range counts {
		frac := float64(c) / shots
		if math.Abs(frac-0.125) > 0.02 {
			t.Fatalf("state %d frequency %v, want ~0.125", z, frac)
		}
	}
}

func TestSampleNoisyReadoutFlipsBits(t *testing.T) {
	// |00> with certain readout error on every bit gives |11> always.
	s, _ := NewState(2)
	rng := rand.New(rand.NewSource(1))
	for _, z := range s.SampleNoisy(rng, 100, NoiseModel{Readout: 1}) {
		if z != 0b11 {
			t.Fatalf("full readout flip produced %02b", z)
		}
	}
}

func TestQAOANoiseDegradesGroundProbability(t *testing.T) {
	a, err := NewQAOA(smallQUBO(), 1)
	if err != nil {
		t.Fatal(err)
	}
	params, err := a.Optimize(OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const shots = 4000
	clean, err := a.SampleNoisy(params.X, shots, rand.New(rand.NewSource(2)), NoiseModel{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := a.SampleNoisy(params.X, shots, rand.New(rand.NewSource(2)), NoiseModel{Depolarizing: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.GroundProbability >= clean.GroundProbability {
		t.Fatalf("noise did not degrade ground probability: %v >= %v",
			noisy.GroundProbability, clean.GroundProbability)
	}
	// With enough shots the best sample usually still hits the optimum
	// (error mitigation by repetition — the cheapest mitigation there is).
	if noisy.ApproxRatio < 1 {
		t.Fatalf("4000 noisy shots missed the 2-qubit optimum (ratio %v)", noisy.ApproxRatio)
	}
}

func TestEstimateResources(t *testing.T) {
	q := smallQUBO() // 2 vars, 2 nonzero linear, 1 coupler
	r, err := EstimateResources(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Qubits != 2 || r.Couplers != 1 || r.Layers != 2 {
		t.Fatalf("resources %+v", r)
	}
	// 1q: 2 prep H + 2 layers * (2 RZ + 1 gadget RZ + 2 RX) = 2 + 10.
	if r.SingleQubitGates != 12 {
		t.Fatalf("1q gates %d, want 12", r.SingleQubitGates)
	}
	// 2q: 2 layers * 2 CNOT per coupler = 4.
	if r.TwoQubitGates != 4 {
		t.Fatalf("2q gates %d, want 4", r.TwoQubitGates)
	}
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
	if _, err := EstimateResources(q, 0); err == nil {
		t.Fatal("zero layers accepted")
	}
	if _, err := EstimateResources(&cqm.QUBO{}, 1); err == nil {
		t.Fatal("empty QUBO accepted")
	}
}

func TestEstimateResourcesScalesWithLayers(t *testing.T) {
	q := smallQUBO()
	r1, _ := EstimateResources(q, 1)
	r3, _ := EstimateResources(q, 3)
	if r3.TwoQubitGates != 3*r1.TwoQubitGates {
		t.Fatalf("2q gates %d vs %d", r3.TwoQubitGates, r1.TwoQubitGates)
	}
}

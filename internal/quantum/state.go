// Package quantum implements a small state-vector simulator and the
// QAOA variational algorithm over QUBO problems. It realizes the
// paper's stated extension path (Section VI): "The hybrid model of our
// Q_CQM* methods can be extended to use gate-based quantum solvers" —
// here the gate-based solver is simulated exactly, which bounds it to
// ~20 qubits and therefore to small LRP instances (see qlrb.SolveGateBased).
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds simulations to keep the 2^n state vector in memory.
const MaxQubits = 24

// State is a pure quantum state over n qubits; amplitude indices use
// the convention that bit q of the index is the computational-basis
// value of qubit q.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("quantum: qubit count %d outside [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s, nil
}

// Uniform returns the |+>^n state (the QAOA initial state).
func Uniform(n int) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	a := complex(1/math.Sqrt(float64(len(s.amp))), 0)
	for i := range s.amp {
		s.amp[i] = a
	}
	return s, nil
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state z.
func (s *State) Amplitude(z int) complex128 { return s.amp[z] }

// apply1q applies the 2x2 unitary {{u00,u01},{u10,u11}} to qubit q.
func (s *State) apply1q(q int, u00, u01, u10, u11 complex128) {
	bit := 1 << q
	size := len(s.amp)
	for base := 0; base < size; base += bit << 1 {
		for off := base; off < base+bit; off++ {
			a0, a1 := s.amp[off], s.amp[off|bit]
			s.amp[off] = u00*a0 + u01*a1
			s.amp[off|bit] = u10*a0 + u11*a1
		}
	}
}

// H applies a Hadamard gate to qubit q.
func (s *State) H(q int) {
	c := complex(1/math.Sqrt2, 0)
	s.apply1q(q, c, c, c, -c)
}

// X applies a Pauli-X (NOT) gate to qubit q.
func (s *State) X(q int) { s.apply1q(q, 0, 1, 1, 0) }

// RX applies exp(-i theta/2 X) to qubit q — the QAOA mixer rotation.
func (s *State) RX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	is := complex(0, -math.Sin(theta/2))
	s.apply1q(q, c, is, is, c)
}

// RZ applies exp(-i theta/2 Z) to qubit q.
func (s *State) RZ(q int, theta float64) {
	s.apply1q(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

// CNOT applies a controlled-NOT with the given control and target.
func (s *State) CNOT(control, target int) {
	cb, tb := 1<<control, 1<<target
	for z := range s.amp {
		if z&cb != 0 && z&tb == 0 {
			s.amp[z], s.amp[z|tb] = s.amp[z|tb], s.amp[z]
		}
	}
}

// PhaseByEnergy multiplies each basis amplitude by exp(-i gamma E[z]) —
// the QAOA cost layer for a diagonal Hamiltonian given as an energy
// table. It panics if the table size disagrees with the state.
func (s *State) PhaseByEnergy(energies []float64, gamma float64) {
	if len(energies) != len(s.amp) {
		panic(fmt.Sprintf("quantum: energy table size %d for state size %d", len(energies), len(s.amp)))
	}
	for z := range s.amp {
		s.amp[z] *= cmplx.Exp(complex(0, -gamma*energies[z]))
	}
}

// Norm returns the state's L2 norm (1 for any unitary evolution).
func (s *State) Norm() float64 {
	total := 0.0
	for _, a := range s.amp {
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(total)
}

// Probability returns |amp[z]|^2.
func (s *State) Probability(z int) float64 {
	a := s.amp[z]
	return real(a)*real(a) + imag(a)*imag(a)
}

// ExpectationDiagonal returns <psi| diag(energies) |psi>.
func (s *State) ExpectationDiagonal(energies []float64) float64 {
	if len(energies) != len(s.amp) {
		panic(fmt.Sprintf("quantum: energy table size %d for state size %d", len(energies), len(s.amp)))
	}
	total := 0.0
	for z, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		total += p * energies[z]
	}
	return total
}

// Sample draws shots basis states from the measurement distribution.
func (s *State) Sample(rng *rand.Rand, shots int) []int {
	// Cumulative distribution; binary search per shot.
	cum := make([]float64, len(s.amp))
	run := 0.0
	for z, a := range s.amp {
		run += real(a)*real(a) + imag(a)*imag(a)
		cum[z] = run
	}
	out := make([]int, shots)
	for i := range out {
		r := rng.Float64() * run
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}

// Bits unpacks basis-state index z into a boolean assignment.
func Bits(z, n int) []bool {
	out := make([]bool, n)
	for q := 0; q < n; q++ {
		out[q] = z&(1<<q) != 0
	}
	return out
}

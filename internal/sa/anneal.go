// Package sa implements simulated annealing over the binary variables of
// a constrained quadratic model. It is the sampling engine behind the
// hybrid solver (internal/hybrid), standing in for the quantum-annealing
// backend of D-Wave's Leap hybrid CQM solver: it samples the same
// penalized energy landscape and returns low-energy, preferably feasible,
// assignments.
//
// The engine supports geometric inverse-temperature schedules, growing
// constraint-penalty weights, frozen (presolved) variables, independent
// multi-restart portfolios executed on a goroutine pool, and parallel
// tempering.
//
// The inner loop is allocation-free in steady state: each run borrows a
// pooled scratch bundle (evaluator, variable pool, best-state bitset)
// and the per-move kernel works over the model's flat CSR layout with a
// packed bitset assignment (see internal/cqm and internal/bits).
package sa

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/bits"
	"repro/internal/cqm"
)

// Options configures a single annealing run.
type Options struct {
	// Sweeps is the number of full passes over the variables.
	Sweeps int
	// BetaStart and BetaEnd bound the geometric inverse-temperature
	// schedule. If either is zero, EstimateSchedule picks them.
	BetaStart, BetaEnd float64
	// Penalty is the initial constraint-penalty weight.
	Penalty float64
	// PenaltyGrowth multiplies the penalty weights at each quarter of
	// the schedule, pushing late-stage search into the feasible region.
	// Values <= 1 disable growth.
	PenaltyGrowth float64
	// Seed seeds the run's private RNG.
	Seed int64
	// Frozen maps presolved variables to their fixed values; the
	// annealer never flips them.
	Frozen map[cqm.VarID]bool
	// Initial is an optional warm-start assignment (copied).
	Initial []bool
	// Pairs lists variable pairs that may be co-flipped as one move;
	// model builders supply pairs whose co-flip preserves an equality
	// constraint (e.g. the LRP's task-conservation constraints), letting
	// the annealer cross penalty walls that block single flips.
	Pairs [][2]cqm.VarID
	// PairProb is the probability that a move is a pair co-flip when
	// Pairs is non-empty (0 disables pair moves).
	PairProb float64
	// NoPolish disables the final zero-temperature descent that runs
	// greedy improving flips (and pair co-flips) to a local optimum
	// after the annealing schedule ends.
	NoPolish bool
	// Stop, when non-nil, is polled at every sweep boundary; once it
	// returns true the run winds down and the best state found so far
	// is still returned. The engine layer (internal/solve) wires ctx
	// cancellation and clock deadlines into it.
	Stop func() bool
	// Progress, when non-nil, is called after every sweep with the
	// sweep count and the best objective/feasibility seen so far.
	Progress func(sweep int, bestObjective float64, feasible bool)
}

// DefaultOptions returns a schedule that solves the repository's LRP
// models reliably at moderate cost.
func DefaultOptions() Options {
	return Options{
		Sweeps:        400,
		Penalty:       1,
		PenaltyGrowth: 4,
	}
}

// Result reports the outcome of an annealing run.
type Result struct {
	// Best is the best assignment found, preferring feasible ones.
	Best []bool
	// BestObjective is the model objective of Best.
	BestObjective float64
	// BestFeasible reports whether Best satisfies all constraints.
	BestFeasible bool
	// Sweeps and Flips count the work performed.
	Sweeps int
	Flips  int64
	// Accepted counts accepted moves (for acceptance-rate diagnostics).
	Accepted int64
	// PenaltyRescales counts constraint-penalty growth events.
	PenaltyRescales int
	// Swaps counts accepted replica exchanges (parallel tempering only).
	Swaps int64
}

// feasTol is the feasibility tolerance used throughout; all LRP data is
// integral so a loose absolute tolerance is safe.
const feasTol = 1e-6

// annealScratch is the reusable per-run state. Runs borrow one from a
// sync.Pool so repeated restarts (portfolio workers, benchmark
// iterations) allocate nothing after warm-up.
type annealScratch struct {
	ev    *cqm.Evaluator
	state []bool
	pool  []cqm.VarID
	pairs [][2]cqm.VarID
	best  bits.Set
}

var annealScratchPool sync.Pool

// getScratch returns a scratch bundle ready for model m with uniform
// penalty weights, reusing a pooled one when it matches the model and
// its layout is still current.
func getScratch(m *cqm.Model, penalty float64) *annealScratch {
	if sc, _ := annealScratchPool.Get().(*annealScratch); sc != nil {
		if sc.ev.Model() == m && sc.ev.LayoutCurrent() {
			sc.ev.SetAllPenalties(penalty)
			return sc
		}
		// Wrong model or stale layout: drop it and build fresh.
	}
	n := m.NumVars()
	return &annealScratch{
		ev:    cqm.NewEvaluator(m, penalty),
		state: make([]bool, n),
		pool:  make([]cqm.VarID, 0, n),
		best:  bits.New(n),
	}
}

func putScratch(sc *annealScratch) { annealScratchPool.Put(sc) }

// annealRun is one trajectory's hot state. Its sweep and polish methods
// are allocation-free; the perf-gate tests assert that with
// testing.AllocsPerRun.
type annealRun struct {
	ev  *cqm.Evaluator
	rng *rand.Rand

	pool     []cqm.VarID
	pairs    [][2]cqm.VarID
	pairProb float64
	usePairs bool

	best     bits.Set
	bestObj  float64
	bestFeas bool

	flips    int64
	accepted int64
}

// record keeps the current state if it beats the best seen so far;
// feasible assignments dominate infeasible ones regardless of objective.
func (r *annealRun) record() {
	feas := r.ev.Feasible(feasTol)
	obj := r.ev.ObjectiveValue()
	if (feas && !r.bestFeas) || (feas == r.bestFeas && obj < r.bestObj) {
		r.bestFeas = feas
		r.bestObj = obj
		r.best.CopyFrom(r.ev.Words())
	}
}

// sweep performs one full pass of Metropolis moves at inverse
// temperature beta, then records the reached state.
func (r *annealRun) sweep(beta float64) {
	ev, rng, pool := r.ev, r.rng, r.pool
	for range pool {
		r.flips++
		if r.usePairs && rng.Float64() < r.pairProb {
			p := r.pairs[rng.Intn(len(r.pairs))]
			// Evaluate the co-flip by committing the first half.
			delta := ev.Flip(p[0])
			d1 := ev.FlipDelta(p[1])
			delta += d1
			if delta <= 0 {
				ev.CommitFlip(p[1], d1)
				r.accepted++
				if delta < 0 {
					r.record()
				}
			} else if metropolisAccept(rng.Float64(), beta*delta) {
				ev.CommitFlip(p[1], d1)
				r.accepted++
			} else {
				ev.Flip(p[0]) // revert
			}
			continue
		}
		v := pool[rng.Intn(len(pool))]
		delta := ev.FlipDelta(v)
		if delta <= 0 {
			ev.CommitFlip(v, delta)
			r.accepted++
			if delta < 0 {
				r.record()
			}
		} else if metropolisAccept(rng.Float64(), beta*delta) {
			ev.CommitFlip(v, delta)
			r.accepted++
		}
	}
	r.record()
}

// polish descends greedily from the current state: improving single
// flips, then improving pair co-flips, until a full round changes
// nothing. The reached local optimum is recorded.
func (r *annealRun) polish() {
	ev := r.ev
	improved := true
	for improved {
		improved = false
		for _, v := range r.pool {
			if d := ev.FlipDelta(v); d < -1e-12 {
				ev.CommitFlip(v, d)
				r.flips++
				improved = true
			}
		}
		if r.usePairs {
			for _, p := range r.pairs {
				delta := ev.Flip(p[0])
				d1 := ev.FlipDelta(p[1])
				delta += d1
				if delta < -1e-12 {
					ev.CommitFlip(p[1], d1)
					r.flips++
					improved = true
				} else {
					ev.Flip(p[0])
				}
			}
		}
	}
	r.record()
}

// Anneal runs one simulated-annealing trajectory on m and returns the
// best assignment encountered. Feasible assignments always dominate
// infeasible ones regardless of objective.
func Anneal(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Sweeps <= 0 {
		opt.Sweeps = DefaultOptions().Sweeps
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	if opt.BetaStart <= 0 || opt.BetaEnd <= 0 {
		bs, be := EstimateSchedule(m, opt.Penalty, rng)
		if opt.BetaStart <= 0 {
			opt.BetaStart = bs
		}
		if opt.BetaEnd <= 0 {
			opt.BetaEnd = be
		}
	}

	sc := getScratch(m, opt.Penalty)
	defer putScratch(sc)
	ev := sc.ev
	state := sc.state[:n]
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	// Flippable variable pool.
	pool := sc.pool[:0]
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}
	sc.pool = pool

	run := annealRun{
		ev:       ev,
		rng:      rng,
		pool:     pool,
		best:     sc.best,
		bestObj:  ev.ObjectiveValue(),
		bestFeas: ev.Feasible(feasTol),
	}
	run.best.CopyFrom(ev.Words())

	res := Result{Sweeps: opt.Sweeps}
	if len(pool) == 0 {
		// Empty move set: no sweeps actually run, so don't claim them.
		res.Sweeps = 0
		res.Best = run.best.ToBools(n)
		res.BestObjective, res.BestFeasible = run.bestObj, run.bestFeas
		return res
	}

	// Pair moves are only usable when both variables are flippable.
	pairs := sc.pairs[:0]
	for _, p := range opt.Pairs {
		if _, fa := opt.Frozen[p[0]]; fa {
			continue
		}
		if _, fb := opt.Frozen[p[1]]; fb {
			continue
		}
		pairs = append(pairs, p)
	}
	sc.pairs = pairs
	run.pairs = pairs
	run.pairProb = opt.PairProb
	run.usePairs = len(pairs) > 0 && opt.PairProb > 0

	growAt := opt.Sweeps / 4
	ratio := 1.0
	if opt.Sweeps > 1 {
		ratio = math.Pow(opt.BetaEnd/opt.BetaStart, 1/float64(opt.Sweeps-1))
	}
	beta := opt.BetaStart
	cancelled := false
	for s := 0; s < opt.Sweeps; s++ {
		if opt.Stop != nil && opt.Stop() {
			res.Sweeps = s
			cancelled = true
			break
		}
		if opt.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			ev.ScalePenalties(opt.PenaltyGrowth)
			res.PenaltyRescales++
		}
		run.sweep(beta)
		beta *= ratio
		if opt.Progress != nil {
			opt.Progress(s+1, run.bestObj, run.bestFeas)
		}
	}

	// Zero-temperature polish: descend greedily from the best state
	// found until no single flip (or pair co-flip) improves. A cancelled
	// run skips it: the caller wants out now.
	if !opt.NoPolish && !cancelled {
		ev.ResetBits(run.best)
		run.polish()
	}

	res.Flips = run.flips
	res.Accepted = run.accepted
	res.Best = run.best.ToBools(n)
	res.BestObjective, res.BestFeasible = run.bestObj, run.bestFeas
	return res
}

// EstimateSchedule samples random flip deltas from random states and
// derives (betaStart, betaEnd) so that uphill moves of typical size are
// accepted with probability ~0.8 initially and ~1e-4 finally. This is the
// standard auto-tuning used when callers do not provide a schedule.
func EstimateSchedule(m *cqm.Model, penalty float64, rng *rand.Rand) (betaStart, betaEnd float64) {
	n := m.NumVars()
	if n == 0 {
		return 1, 10
	}
	ev := cqm.NewEvaluator(m, penalty)
	state := make([]bool, n)
	var maxUp, sumUp float64
	var count int
	for trial := 0; trial < 8; trial++ {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
		ev.Reset(state)
		for k := 0; k < 4*n; k++ {
			v := cqm.VarID(rng.Intn(n))
			d := ev.FlipDelta(v)
			if d > 0 {
				sumUp += d
				count++
				if d > maxUp {
					maxUp = d
				}
			}
			ev.CommitFlip(v, d)
		}
	}
	if count == 0 || sumUp == 0 {
		return 1, 10
	}
	avgUp := sumUp / float64(count)
	// Accept average uphill with p0=0.8 at the start and the largest
	// uphill with p1=1e-4 at the end.
	betaStart = -math.Log(0.8) / avgUp
	betaEnd = -math.Log(1e-4) / math.Max(avgUp, maxUp/8)
	if betaEnd <= betaStart {
		betaEnd = betaStart * 100
	}
	return betaStart, betaEnd
}

// Package sa implements simulated annealing over the binary variables of
// a constrained quadratic model. It is the sampling engine behind the
// hybrid solver (internal/hybrid), standing in for the quantum-annealing
// backend of D-Wave's Leap hybrid CQM solver: it samples the same
// penalized energy landscape and returns low-energy, preferably feasible,
// assignments.
//
// The engine supports geometric inverse-temperature schedules, growing
// constraint-penalty weights, frozen (presolved) variables, independent
// multi-restart portfolios executed on a goroutine pool, and parallel
// tempering.
package sa

import (
	"math"
	"math/rand"

	"repro/internal/cqm"
)

// Options configures a single annealing run.
type Options struct {
	// Sweeps is the number of full passes over the variables.
	Sweeps int
	// BetaStart and BetaEnd bound the geometric inverse-temperature
	// schedule. If either is zero, EstimateSchedule picks them.
	BetaStart, BetaEnd float64
	// Penalty is the initial constraint-penalty weight.
	Penalty float64
	// PenaltyGrowth multiplies the penalty weights at each quarter of
	// the schedule, pushing late-stage search into the feasible region.
	// Values <= 1 disable growth.
	PenaltyGrowth float64
	// Seed seeds the run's private RNG.
	Seed int64
	// Frozen maps presolved variables to their fixed values; the
	// annealer never flips them.
	Frozen map[cqm.VarID]bool
	// Initial is an optional warm-start assignment (copied).
	Initial []bool
	// Pairs lists variable pairs that may be co-flipped as one move;
	// model builders supply pairs whose co-flip preserves an equality
	// constraint (e.g. the LRP's task-conservation constraints), letting
	// the annealer cross penalty walls that block single flips.
	Pairs [][2]cqm.VarID
	// PairProb is the probability that a move is a pair co-flip when
	// Pairs is non-empty (0 disables pair moves).
	PairProb float64
	// NoPolish disables the final zero-temperature descent that runs
	// greedy improving flips (and pair co-flips) to a local optimum
	// after the annealing schedule ends.
	NoPolish bool
	// Stop, when non-nil, is polled at every sweep boundary; once it
	// returns true the run winds down and the best state found so far
	// is still returned. The engine layer (internal/solve) wires ctx
	// cancellation and clock deadlines into it.
	Stop func() bool
	// Progress, when non-nil, is called after every sweep with the
	// sweep count and the best objective/feasibility seen so far.
	Progress func(sweep int, bestObjective float64, feasible bool)
}

// DefaultOptions returns a schedule that solves the repository's LRP
// models reliably at moderate cost.
func DefaultOptions() Options {
	return Options{
		Sweeps:        400,
		Penalty:       1,
		PenaltyGrowth: 4,
	}
}

// Result reports the outcome of an annealing run.
type Result struct {
	// Best is the best assignment found, preferring feasible ones.
	Best []bool
	// BestObjective is the model objective of Best.
	BestObjective float64
	// BestFeasible reports whether Best satisfies all constraints.
	BestFeasible bool
	// Sweeps and Flips count the work performed.
	Sweeps int
	Flips  int64
	// Accepted counts accepted moves (for acceptance-rate diagnostics).
	Accepted int64
	// PenaltyRescales counts constraint-penalty growth events.
	PenaltyRescales int
	// Swaps counts accepted replica exchanges (parallel tempering only).
	Swaps int64
}

// feasTol is the feasibility tolerance used throughout; all LRP data is
// integral so a loose absolute tolerance is safe.
const feasTol = 1e-6

// Anneal runs one simulated-annealing trajectory on m and returns the
// best assignment encountered. Feasible assignments always dominate
// infeasible ones regardless of objective.
func Anneal(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Sweeps <= 0 {
		opt.Sweeps = DefaultOptions().Sweeps
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	if opt.BetaStart <= 0 || opt.BetaEnd <= 0 {
		bs, be := EstimateSchedule(m, opt.Penalty, rng)
		if opt.BetaStart <= 0 {
			opt.BetaStart = bs
		}
		if opt.BetaEnd <= 0 {
			opt.BetaEnd = be
		}
	}

	ev := cqm.NewEvaluator(m, opt.Penalty)
	state := make([]bool, n)
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	// Flippable variable pool.
	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}

	res := Result{Sweeps: opt.Sweeps}
	best := ev.Assignment()
	bestObj := ev.ObjectiveValue()
	bestFeas := ev.Feasible(feasTol)
	record := func() {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas = feas
			bestObj = obj
			copy(best, ev.Assignment())
		}
	}

	if len(pool) == 0 {
		// Empty move set: no sweeps actually run, so don't claim them.
		res.Sweeps = 0
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	// Pair moves are only usable when both variables are flippable.
	pairs := opt.Pairs[:0:0]
	for _, p := range opt.Pairs {
		if _, fa := opt.Frozen[p[0]]; fa {
			continue
		}
		if _, fb := opt.Frozen[p[1]]; fb {
			continue
		}
		pairs = append(pairs, p)
	}
	usePairs := len(pairs) > 0 && opt.PairProb > 0

	growAt := opt.Sweeps / 4
	ratio := 1.0
	if opt.Sweeps > 1 {
		ratio = math.Pow(opt.BetaEnd/opt.BetaStart, 1/float64(opt.Sweeps-1))
	}
	beta := opt.BetaStart
	cancelled := false
	for s := 0; s < opt.Sweeps; s++ {
		if opt.Stop != nil && opt.Stop() {
			res.Sweeps = s
			cancelled = true
			break
		}
		if opt.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			ev.ScalePenalties(opt.PenaltyGrowth)
			res.PenaltyRescales++
		}
		for range pool {
			res.Flips++
			if usePairs && rng.Float64() < opt.PairProb {
				p := pairs[rng.Intn(len(pairs))]
				// Evaluate the co-flip by committing the first half.
				delta := ev.Flip(p[0])
				delta += ev.FlipDelta(p[1])
				if delta <= 0 || rng.Float64() < math.Exp(-beta*delta) {
					ev.Flip(p[1])
					res.Accepted++
					if delta < 0 {
						record()
					}
				} else {
					ev.Flip(p[0]) // revert
				}
				continue
			}
			v := pool[rng.Intn(len(pool))]
			delta := ev.FlipDelta(v)
			if delta <= 0 || rng.Float64() < math.Exp(-beta*delta) {
				ev.Flip(v)
				res.Accepted++
				if delta < 0 {
					record()
				}
			}
		}
		record()
		beta *= ratio
		if opt.Progress != nil {
			opt.Progress(s+1, bestObj, bestFeas)
		}
	}

	// Zero-temperature polish: descend greedily from the best state
	// found until no single flip (or pair co-flip) improves. A cancelled
	// run skips it: the caller wants out now.
	if !opt.NoPolish && !cancelled {
		ev.Reset(best)
		improved := true
		for improved {
			improved = false
			for _, v := range pool {
				if ev.FlipDelta(v) < -1e-12 {
					ev.Flip(v)
					res.Flips++
					improved = true
				}
			}
			if usePairs {
				for _, p := range pairs {
					delta := ev.Flip(p[0])
					delta += ev.FlipDelta(p[1])
					if delta < -1e-12 {
						ev.Flip(p[1])
						res.Flips++
						improved = true
					} else {
						ev.Flip(p[0])
					}
				}
			}
		}
		record()
	}

	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

// EstimateSchedule samples random flip deltas from random states and
// derives (betaStart, betaEnd) so that uphill moves of typical size are
// accepted with probability ~0.8 initially and ~1e-4 finally. This is the
// standard auto-tuning used when callers do not provide a schedule.
func EstimateSchedule(m *cqm.Model, penalty float64, rng *rand.Rand) (betaStart, betaEnd float64) {
	n := m.NumVars()
	if n == 0 {
		return 1, 10
	}
	ev := cqm.NewEvaluator(m, penalty)
	state := make([]bool, n)
	var maxUp, sumUp float64
	var count int
	for trial := 0; trial < 8; trial++ {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
		ev.Reset(state)
		for k := 0; k < 4*n; k++ {
			v := cqm.VarID(rng.Intn(n))
			d := ev.FlipDelta(v)
			if d > 0 {
				sumUp += d
				count++
				if d > maxUp {
					maxUp = d
				}
			}
			ev.Flip(v)
		}
	}
	if count == 0 || sumUp == 0 {
		return 1, 10
	}
	avgUp := sumUp / float64(count)
	// Accept average uphill with p0=0.8 at the start and the largest
	// uphill with p1=1e-4 at the end.
	betaStart = -math.Log(0.8) / avgUp
	betaEnd = -math.Log(1e-4) / math.Max(avgUp, maxUp/8)
	if betaEnd <= betaStart {
		betaEnd = betaStart * 100
	}
	return betaStart, betaEnd
}

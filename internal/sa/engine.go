package sa

import (
	"context"
	"errors"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// Engine adapts the annealer to the solve.Solver interface: one solve
// runs a portfolio of independent restarts (solve.WithReads) of the
// configured base schedule. Cancellation and deadlines stop every
// restart at its next sweep boundary; the best state found so far is
// returned with Stats.Interrupted set.
type Engine struct {
	// Base is the per-restart configuration. Seed, Sweeps, Stop and
	// Progress are overridden per solve from the engine-layer options.
	Base Options
}

// NewEngine returns an annealing engine with the default schedule.
func NewEngine() *Engine { return &Engine{Base: DefaultOptions()} }

// Name implements solve.Solver.
func (e *Engine) Name() string { return "sa" }

// Solve implements solve.Solver.
func (e *Engine) Solve(ctx context.Context, m *cqm.Model, opts ...solve.Option) (*solve.Result, error) {
	if m == nil {
		return nil, errors.New("sa: nil model")
	}
	cfg := solve.NewConfig(opts...)
	stop := cfg.NewStop(ctx)
	start := cfg.Clock.Now()

	base := e.Base
	if cfg.HasSeed {
		base.Seed = cfg.Seed
	}
	if cfg.Sweeps > 0 {
		base.Sweeps = cfg.Sweeps
	}
	base.Stop = stop.Func()
	reads := cfg.Reads
	if reads <= 0 {
		reads = 1
	}

	// Fast path: with no free variables (empty model, or everything
	// frozen by presolve) there is no move set to search — the single
	// reachable assignment IS the answer. Return it immediately instead
	// of burning the sweep budget, per the cancellation contract's
	// best-partial shape with Stats populated.
	if x, ok := solve.FixedAssignment(m, base.Frozen); ok {
		res := &solve.Result{
			Sample:    x,
			Objective: m.Objective(x),
			Feasible:  m.Feasible(x, feasTol),
			Stats:     solve.Stats{Wall: cfg.Clock.Since(start), Reads: 1, Proven: true},
		}
		cfg.Observe(e.Name(), res.Stats)
		return res, nil
	}

	popt := PortfolioOptions{Base: base, Restarts: reads, Workers: cfg.Workers}
	if p := solve.SerialProgress(cfg.Progress); p != nil {
		popt.Progress = func(restart, sweep int, best float64, feas bool) {
			p(solve.Event{Restart: restart, Sweep: sweep, BestObjective: best, Feasible: feas})
		}
	}
	best, all := Portfolio(m, popt)

	res := &solve.Result{
		Sample:    best.Best,
		Objective: best.BestObjective,
		Feasible:  best.BestFeasible,
		Stats: solve.Stats{
			Wall:        cfg.Clock.Since(start),
			Reads:       len(all),
			Interrupted: stop.Interrupted(),
		},
	}
	for _, r := range all {
		res.Stats.Sweeps += r.Sweeps
		res.Stats.Flips += r.Flips
		res.Stats.Accepted += r.Accepted
		res.Stats.PenaltyRescales += r.PenaltyRescales
		res.Stats.TemperingSwaps += r.Swaps
		if r.BestFeasible {
			res.Stats.FeasibleReads++
		}
	}
	cfg.Observe(e.Name(), res.Stats)
	return res, nil
}

package sa

import (
	"testing"

	"repro/internal/cqm"
)

func TestIslandsSolvesConstrainedModel(t *testing.T) {
	m := cqm.New()
	rewards := []float64{-9, -7, -5, -3, -2, -1}
	var sum cqm.LinExpr
	for _, r := range rewards {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, r)
		sum.Add(v, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, 2)
	res := Islands(m, IslandOptions{
		Base:    Options{Sweeps: 60, Seed: 5, Penalty: 2, PenaltyGrowth: 4},
		Islands: 4,
		Epochs:  3,
	})
	if !res.BestFeasible {
		t.Fatal("islands found nothing feasible")
	}
	if res.BestObjective != -16 {
		t.Fatalf("objective %v, want -16", res.BestObjective)
	}
	// Aggregate work counters cover all islands and epochs.
	if res.Sweeps != 60*4*3 {
		t.Fatalf("aggregate sweeps %d, want %d", res.Sweeps, 60*4*3)
	}
	if res.Flips == 0 {
		t.Fatal("no flips counted")
	}
}

func TestIslandsDeterministic(t *testing.T) {
	m := partitionModel([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 15)
	opt := IslandOptions{Base: Options{Sweeps: 40, Seed: 11}, Islands: 3, Epochs: 2, Workers: 2}
	a := Islands(m, opt)
	b := Islands(m, opt)
	if a.BestObjective != b.BestObjective {
		t.Fatalf("nondeterministic: %v vs %v", a.BestObjective, b.BestObjective)
	}
}

func TestIslandsDefaultsClamp(t *testing.T) {
	m := partitionModel([]float64{1, 2, 3}, 3)
	res := Islands(m, IslandOptions{Base: Options{Sweeps: 20, Seed: 1}, Islands: 0, Epochs: 0})
	if res.BestObjective != 0 {
		t.Fatalf("objective %v", res.BestObjective)
	}
	if res.Sweeps != 20*2*1 {
		t.Fatalf("sweeps %d with clamped defaults", res.Sweeps)
	}
}

func TestIslandsWarmStart(t *testing.T) {
	m := partitionModel([]float64{7, 5, 4, 3, 2, 2, 1}, 12)
	// Feasible warm start at the optimum: islands must not lose it.
	warm := []bool{true, true, false, false, false, false, false} // 7+5 = 12
	res := Islands(m, IslandOptions{
		Base:    Options{Sweeps: 10, Seed: 2, Initial: warm},
		Islands: 3,
		Epochs:  2,
	})
	if res.BestObjective != 0 {
		t.Fatalf("objective %v, want 0 (warm start lost)", res.BestObjective)
	}
}

func TestAnnealCancellation(t *testing.T) {
	m := partitionModel([]float64{5, 3, 8, 1, 9, 2, 7, 4}, 19)
	// Stop tripped before starting: abort at sweep 0.
	res := Anneal(m, Options{Sweeps: 10_000, Seed: 1, Stop: func() bool { return true }})
	if res.Sweeps != 0 {
		t.Fatalf("ran %d sweeps after cancellation", res.Sweeps)
	}
	// The initial state is still reported as best.
	if res.Best == nil {
		t.Fatal("no state returned after cancellation")
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions()
	if o.Sweeps <= 0 || o.Penalty <= 0 || o.PenaltyGrowth <= 1 {
		t.Fatalf("DefaultOptions = %+v", o)
	}
	// Zero-value Options fall back to the defaults inside Anneal.
	m := partitionModel([]float64{2, 3, 5}, 5)
	res := Anneal(m, Options{Seed: 1})
	if res.Sweeps != o.Sweeps {
		t.Fatalf("zero options ran %d sweeps, want default %d", res.Sweeps, o.Sweeps)
	}
	if res.BestObjective != 0 {
		t.Fatalf("objective %v", res.BestObjective)
	}
}

func TestAnnealWithExplicitSchedule(t *testing.T) {
	m := partitionModel([]float64{4, 3, 2, 1}, 5)
	res := Anneal(m, Options{Sweeps: 100, Seed: 6, BetaStart: 0.5, BetaEnd: 50})
	if res.BestObjective != 0 {
		t.Fatalf("explicit schedule missed optimum: %v", res.BestObjective)
	}
}

func TestAnnealPairMovesSolveEqualityModel(t *testing.T) {
	// A one-hot constraint (x0+x1+x2 == 1) with rewards: single flips
	// from a feasible state always break the equality; pair moves fix
	// that. Verify pair-enabled annealing finds the best one-hot state.
	m := cqm.New()
	rewards := []float64{-1, -5, -3}
	var sum cqm.LinExpr
	vars := make([]cqm.VarID, 3)
	for i, r := range rewards {
		vars[i] = m.AddBinary("x")
		m.AddObjectiveLinear(vars[i], r)
		sum.Add(vars[i], 1)
	}
	m.AddConstraint("onehot", sum, cqm.Eq, 1)
	initial := []bool{true, false, false} // feasible but suboptimal
	res := Anneal(m, Options{
		Sweeps: 200, Seed: 4, Penalty: 50, Initial: initial,
		Pairs:    [][2]cqm.VarID{{vars[0], vars[1]}, {vars[0], vars[2]}, {vars[1], vars[2]}},
		PairProb: 0.7,
	})
	if !res.BestFeasible || res.BestObjective != -5 {
		t.Fatalf("pair moves failed: feasible=%v obj=%v", res.BestFeasible, res.BestObjective)
	}
}

package sa

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/bits"
	"repro/internal/cqm"
)

// PTOptions configures a parallel-tempering (replica exchange) run:
// Replicas trajectories at geometrically spaced inverse temperatures
// that attempt neighbour swaps every ExchangeEvery sweeps.
type PTOptions struct {
	// Base provides penalty settings, sweeps, seed and frozen variables;
	// Base.BetaStart/BetaEnd bound the temperature ladder.
	Base Options
	// Replicas is the number of temperature rungs (>= 2).
	Replicas int
	// ExchangeEvery is the number of sweeps between exchange attempts.
	ExchangeEvery int
}

// ptSlot is one temperature rung. Between exchange barriers a slot runs
// on its own goroutine, touching only its own fields: its current
// evaluator (swapped between slots at barriers), its private RNG, and
// its sweep logs. The main goroutine reads them only after the barrier,
// so no locks are needed in the hot loop.
//
// Determinism: the slot logs (feasible, objective) for every sweep it
// completes. After each barrier the main goroutine replays those logs in
// the exact (sweep-major, slot-minor) order the old sequential
// implementation called record() in, so the global best — including
// order-dependent tie-breaking — is byte-identical to the sequential
// trajectory. The winning state itself is the slot's local best
// snapshot: strict improvement keeps the earliest occurrence of any
// value, which is provably the state the sequential scan would have
// copied.
type ptSlot struct {
	ev   *cqm.Evaluator
	rng  *rand.Rand
	beta float64

	// Per-sweep records, indexed by global sweep number.
	feasLog []bool
	objLog  []float64
	// completed is the number of sweeps this slot has finished.
	completed int

	// Slot-local best (earliest occurrence of the slot's best value,
	// counting the initial state as sweep -1).
	best     bits.Set
	bestObj  float64
	bestFeas bool

	flips    int64
	accepted int64
}

// recordLocal keeps the slot's current state if it strictly improves the
// slot-local best.
func (w *ptSlot) recordLocal() {
	feas := w.ev.Feasible(feasTol)
	obj := w.ev.ObjectiveValue()
	if (feas && !w.bestFeas) || (feas == w.bestFeas && obj < w.bestObj) {
		w.bestFeas, w.bestObj = feas, obj
		w.best.CopyFrom(w.ev.Words())
	}
}

// runSegment advances the slot from global sweep segStart up to (not
// including) segEnd, or until Stop fires at a sweep boundary. The loop
// body is allocation-free.
func (w *ptSlot) runSegment(segStart, segEnd int, pool []cqm.VarID, opt *Options, growAt int) {
	ev, rng, beta := w.ev, w.rng, w.beta
	for s := segStart; s < segEnd; s++ {
		if opt.Stop != nil && opt.Stop() {
			return
		}
		if opt.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			ev.ScalePenalties(opt.PenaltyGrowth)
		}
		for range pool {
			w.flips++
			v := pool[rng.Intn(len(pool))]
			delta := ev.FlipDelta(v)
			if delta <= 0 {
				ev.CommitFlip(v, delta)
				w.accepted++
			} else if metropolisAccept(rng.Float64(), beta*delta) {
				ev.CommitFlip(v, delta)
				w.accepted++
			}
		}
		w.feasLog[s] = ev.Feasible(feasTol)
		w.objLog[s] = ev.ObjectiveValue()
		w.recordLocal()
		w.completed = s + 1
	}
}

// ParallelTempering runs replica-exchange annealing. Compared to plain
// multi-restart it mixes better on rugged landscapes (the paper's
// Q_CQM2 models at scale); it is used by the hybrid solver for large
// models.
//
// Replicas run concurrently between exchange barriers, one goroutine
// per temperature rung with a private evaluator; exchanges swap the
// evaluator pointers of neighbouring rungs in O(1). Results at a fixed
// seed are identical to the sequential formulation (see ptSlot).
func ParallelTempering(m *cqm.Model, opt PTOptions) Result {
	if opt.Replicas < 2 {
		opt.Replicas = 2
	}
	if opt.ExchangeEvery <= 0 {
		opt.ExchangeEvery = 10
	}
	base := opt.Base
	if base.Sweeps <= 0 {
		base.Sweeps = DefaultOptions().Sweeps
	}
	if base.Penalty <= 0 {
		base.Penalty = 1
	}
	rng := rand.New(rand.NewSource(base.Seed))
	if base.BetaStart <= 0 || base.BetaEnd <= 0 {
		bs, be := EstimateSchedule(m, base.Penalty, rng)
		if base.BetaStart <= 0 {
			base.BetaStart = bs
		}
		if base.BetaEnd <= 0 {
			base.BetaEnd = be
		}
	}

	n := m.NumVars()
	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := base.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}

	// Temperature ladder: geometric from BetaStart (hot) to BetaEnd
	// (cold). Each slot gets its own evaluator and RNG; the shared rng
	// above is reserved for exchange decisions, as in the sequential
	// formulation.
	slots := make([]*ptSlot, opt.Replicas)
	state := make([]bool, n)
	for r := range slots {
		f := float64(r) / float64(opt.Replicas-1)
		w := &ptSlot{
			ev:      cqm.NewEvaluator(m, base.Penalty),
			rng:     rand.New(rand.NewSource(base.Seed*31 + int64(r))),
			beta:    base.BetaStart * math.Pow(base.BetaEnd/base.BetaStart, f),
			feasLog: make([]bool, base.Sweeps),
			objLog:  make([]float64, base.Sweeps),
			best:    bits.New(n),
		}
		for i := range state {
			state[i] = w.rng.Intn(2) == 0
		}
		for v, val := range base.Frozen {
			state[v] = val
		}
		w.ev.Reset(state)
		w.bestObj = w.ev.ObjectiveValue()
		w.bestFeas = w.ev.Feasible(feasTol)
		w.best.CopyFrom(w.ev.Words())
		slots[r] = w
	}

	res := Result{Sweeps: base.Sweeps}
	bestObj := math.Inf(1)
	bestFeas := false
	bestSlot := 0
	// merge folds one (feasible, objective) record into the global best,
	// remembering which slot holds the winning snapshot.
	merge := func(r int, feas bool, obj float64) {
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas, bestObj = feas, obj
			bestSlot = r
		}
	}
	// Initial states are recorded in slot order, before any sweep.
	for r, w := range slots {
		merge(r, w.bestFeas, w.bestObj)
	}
	if len(pool) == 0 {
		res.Best = slots[bestSlot].best.ToBools(n)
		res.BestObjective, res.BestFeasible = bestObj, bestFeas
		return res
	}

	growAt := base.Sweeps / 4
	var wg sync.WaitGroup
	merged := 0 // sweeps folded into the global best so far
	for segStart := 0; segStart < base.Sweeps; segStart += opt.ExchangeEvery {
		segEnd := segStart + opt.ExchangeEvery
		if segEnd > base.Sweeps {
			segEnd = base.Sweeps
		}
		for _, w := range slots {
			wg.Add(1)
			go func(w *ptSlot) {
				defer wg.Done()
				w.runSegment(segStart, segEnd, pool, &base, growAt)
			}(w)
		}
		wg.Wait()

		// Replay this segment's records in sequential (sweep-major,
		// slot-minor) order. A slot that stopped early simply has no
		// record at the later sweeps.
		done := segEnd
		for _, w := range slots {
			if w.completed < done {
				done = w.completed
			}
		}
		for s := merged; s < segEnd; s++ {
			for r, w := range slots {
				if s < w.completed {
					merge(r, w.feasLog[s], w.objLog[s])
				}
			}
			if base.Progress != nil && s < done {
				base.Progress(s+1, bestObj, bestFeas)
			}
		}
		merged = segEnd

		if done < segEnd {
			// A Stop fired mid-segment: wind down at the barrier keeping
			// everything recorded so far.
			res.Sweeps = done
			break
		}

		// Exchange pass at the barrier: neighbour swaps are O(1)
		// evaluator-pointer swaps, decided by the shared exchange RNG.
		if (segEnd-1)%opt.ExchangeEvery == opt.ExchangeEvery-1 {
			for r := 0; r+1 < opt.Replicas; r++ {
				if base.Stop != nil && base.Stop() {
					break
				}
				dBeta := slots[r+1].beta - slots[r].beta
				dE := slots[r].ev.Energy() - slots[r+1].ev.Energy()
				if dBeta*dE > 0 || rng.Float64() < math.Exp(dBeta*dE) {
					slots[r].ev, slots[r+1].ev = slots[r+1].ev, slots[r].ev
					res.Swaps++
				}
			}
		}
	}

	if base.PenaltyGrowth > 1 && growAt > 0 {
		for s := 1; s < res.Sweeps; s++ {
			if s%growAt == 0 {
				res.PenaltyRescales++
			}
		}
	}
	for _, w := range slots {
		res.Flips += w.flips
		res.Accepted += w.accepted
	}
	res.Best = slots[bestSlot].best.ToBools(n)
	res.BestObjective, res.BestFeasible = bestObj, bestFeas
	return res
}

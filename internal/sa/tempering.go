package sa

import (
	"math"
	"math/rand"

	"repro/internal/cqm"
)

// PTOptions configures a parallel-tempering (replica exchange) run:
// Replicas trajectories at geometrically spaced inverse temperatures
// that attempt neighbour swaps every ExchangeEvery sweeps.
type PTOptions struct {
	// Base provides penalty settings, sweeps, seed and frozen variables;
	// Base.BetaStart/BetaEnd bound the temperature ladder.
	Base Options
	// Replicas is the number of temperature rungs (>= 2).
	Replicas int
	// ExchangeEvery is the number of sweeps between exchange attempts.
	ExchangeEvery int
}

// ParallelTempering runs replica-exchange annealing. Compared to plain
// multi-restart it mixes better on rugged landscapes (the paper's
// Q_CQM2 models at scale); it is used by the hybrid solver for large
// models.
func ParallelTempering(m *cqm.Model, opt PTOptions) Result {
	if opt.Replicas < 2 {
		opt.Replicas = 2
	}
	if opt.ExchangeEvery <= 0 {
		opt.ExchangeEvery = 10
	}
	base := opt.Base
	if base.Sweeps <= 0 {
		base.Sweeps = DefaultOptions().Sweeps
	}
	if base.Penalty <= 0 {
		base.Penalty = 1
	}
	rng := rand.New(rand.NewSource(base.Seed))
	if base.BetaStart <= 0 || base.BetaEnd <= 0 {
		bs, be := EstimateSchedule(m, base.Penalty, rng)
		if base.BetaStart <= 0 {
			base.BetaStart = bs
		}
		if base.BetaEnd <= 0 {
			base.BetaEnd = be
		}
	}

	n := m.NumVars()
	// Temperature ladder: geometric from BetaStart (hot) to BetaEnd (cold).
	betas := make([]float64, opt.Replicas)
	for r := range betas {
		f := float64(r) / float64(opt.Replicas-1)
		betas[r] = base.BetaStart * math.Pow(base.BetaEnd/base.BetaStart, f)
	}

	evs := make([]*cqm.Evaluator, opt.Replicas)
	rngs := make([]*rand.Rand, opt.Replicas)
	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := base.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}
	for r := range evs {
		evs[r] = cqm.NewEvaluator(m, base.Penalty)
		rngs[r] = rand.New(rand.NewSource(base.Seed*31 + int64(r)))
		state := make([]bool, n)
		for i := range state {
			state[i] = rngs[r].Intn(2) == 0
		}
		for v, val := range base.Frozen {
			state[v] = val
		}
		evs[r].Reset(state)
	}

	res := Result{Sweeps: base.Sweeps}
	var best []bool
	bestObj := math.Inf(1)
	bestFeas := false
	record := func(ev *cqm.Evaluator) {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas, bestObj = feas, obj
			best = ev.Assignment()
		}
	}
	for r := range evs {
		record(evs[r])
	}
	if len(pool) == 0 {
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	growAt := base.Sweeps / 4
	for s := 0; s < base.Sweeps; s++ {
		if base.Stop != nil && base.Stop() {
			// Interrupted: wind down at the sweep boundary, keeping the
			// best state recorded across all replicas so far.
			res.Sweeps = s
			break
		}
		if base.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			for r := range evs {
				evs[r].ScalePenalties(base.PenaltyGrowth)
			}
			res.PenaltyRescales++
		}
		for r := range evs {
			ev, beta, rr := evs[r], betas[r], rngs[r]
			for range pool {
				v := pool[rr.Intn(len(pool))]
				delta := ev.FlipDelta(v)
				res.Flips++
				if delta <= 0 || rr.Float64() < math.Exp(-beta*delta) {
					ev.Flip(v)
					res.Accepted++
				}
			}
			record(ev)
		}
		if s%opt.ExchangeEvery == opt.ExchangeEvery-1 {
			for r := 0; r+1 < opt.Replicas; r++ {
				if base.Stop != nil && base.Stop() {
					break
				}
				dBeta := betas[r+1] - betas[r]
				dE := evs[r].Energy() - evs[r+1].Energy()
				if dBeta*dE > 0 || rng.Float64() < math.Exp(dBeta*dE) {
					// Swap states by re-seating the assignments.
					a, b := evs[r].Assignment(), evs[r+1].Assignment()
					evs[r].Reset(b)
					evs[r+1].Reset(a)
					res.Swaps++
				}
			}
		}
		if base.Progress != nil {
			base.Progress(s+1, bestObj, bestFeas)
		}
	}
	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

package sa

import (
	"sync"

	"repro/internal/cqm"
)

// IslandOptions configures an island-model run: Islands independent
// populations anneal concurrently for Epochs rounds of Base.Sweeps
// sweeps each; between rounds the globally best state migrates to the
// weakest island (elitist migration). The island model is the classic
// distributed-memory parallelization of annealing — each island maps to
// a "node", migration to the inter-node exchange.
type IslandOptions struct {
	// Base is the per-epoch annealing configuration.
	Base Options
	// Islands is the population count (>= 2).
	Islands int
	// Epochs is the number of anneal-exchange rounds (>= 1).
	Epochs int
	// Workers bounds concurrency (0 = unbounded, one goroutine per
	// island).
	Workers int
}

// Islands runs island-model annealing and returns the global best.
// Results are deterministic for a fixed seed: island trajectories use
// disjoint seed streams and the exchange step is reduced in island
// order.
func Islands(m *cqm.Model, opt IslandOptions) Result {
	if opt.Islands < 2 {
		opt.Islands = 2
	}
	if opt.Epochs < 1 {
		opt.Epochs = 1
	}
	workers := opt.Workers
	if workers <= 0 || workers > opt.Islands {
		workers = opt.Islands
	}

	states := make([][]bool, opt.Islands) // nil = random start
	if opt.Base.Initial != nil {
		states[0] = opt.Base.Initial
	}
	var agg Result
	best := Result{BestObjective: 0, BestFeasible: false, Best: nil}
	haveBest := false

	results := make([]Result, opt.Islands)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		if opt.Base.Stop != nil && opt.Base.Stop() {
			break // interrupted: keep the best state from finished epochs
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					o := opt.Base
					o.Seed = opt.Base.Seed*1_000_003 + int64(epoch)*131_071 + int64(i)*8_191
					o.Initial = states[i]
					results[i] = Anneal(m, o)
				}
			}()
		}
		for i := 0; i < opt.Islands; i++ {
			next <- i
		}
		close(next)
		wg.Wait()

		// Reduce: track the global best and each island's next state.
		worst := 0
		for i, r := range results {
			agg.Flips += r.Flips
			agg.Accepted += r.Accepted
			agg.Sweeps += r.Sweeps
			states[i] = r.Best
			if !haveBest || Better(r, best) {
				best = r
				haveBest = true
			}
			if Better(results[worst], r) {
				worst = i
			}
		}
		// Elitist migration: the weakest island restarts from the
		// global best next epoch.
		states[worst] = best.Best
	}
	best.Flips = agg.Flips
	best.Accepted = agg.Accepted
	best.Sweeps = agg.Sweeps
	return best
}

package sa

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cqm"
	"repro/internal/refeval"
)

// This file holds the rewritten annealer to its headline claim: the
// CSR/bitset hot path is a pure performance change, byte-identical in
// behaviour. refAnneal and refTempering below are verbatim replays of
// the pre-rewrite inner loops on top of the frozen reference evaluator
// (internal/refeval); the tests require the real implementations to
// reproduce their trajectories exactly — same best assignment, same
// float objective bits, same flip/accept counters — across seeds and
// option shapes.

// refAnneal is the historical Anneal implementation, verbatim.
func refAnneal(m *cqm.Model, opt Options) Result {
	n := m.NumVars()
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Sweeps <= 0 {
		opt.Sweeps = DefaultOptions().Sweeps
	}
	if opt.Penalty <= 0 {
		opt.Penalty = 1
	}
	if opt.BetaStart <= 0 || opt.BetaEnd <= 0 {
		bs, be := refEstimateSchedule(m, opt.Penalty, rng)
		if opt.BetaStart <= 0 {
			opt.BetaStart = bs
		}
		if opt.BetaEnd <= 0 {
			opt.BetaEnd = be
		}
	}

	ev := refeval.New(m, opt.Penalty)
	state := make([]bool, n)
	if opt.Initial != nil {
		copy(state, opt.Initial)
	} else {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
	}
	for v, val := range opt.Frozen {
		state[v] = val
	}
	ev.Reset(state)

	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := opt.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}

	res := Result{Sweeps: opt.Sweeps}
	best := ev.Assignment()
	bestObj := ev.ObjectiveValue()
	bestFeas := ev.Feasible(feasTol)
	record := func() {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas = feas
			bestObj = obj
			copy(best, ev.Assignment())
		}
	}

	if len(pool) == 0 {
		res.Sweeps = 0
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	pairs := opt.Pairs[:0:0]
	for _, p := range opt.Pairs {
		if _, fa := opt.Frozen[p[0]]; fa {
			continue
		}
		if _, fb := opt.Frozen[p[1]]; fb {
			continue
		}
		pairs = append(pairs, p)
	}
	usePairs := len(pairs) > 0 && opt.PairProb > 0

	growAt := opt.Sweeps / 4
	ratio := 1.0
	if opt.Sweeps > 1 {
		ratio = math.Pow(opt.BetaEnd/opt.BetaStart, 1/float64(opt.Sweeps-1))
	}
	beta := opt.BetaStart
	cancelled := false
	for s := 0; s < opt.Sweeps; s++ {
		if opt.Stop != nil && opt.Stop() {
			res.Sweeps = s
			cancelled = true
			break
		}
		if opt.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			ev.ScalePenalties(opt.PenaltyGrowth)
			res.PenaltyRescales++
		}
		for range pool {
			res.Flips++
			if usePairs && rng.Float64() < opt.PairProb {
				p := pairs[rng.Intn(len(pairs))]
				delta := ev.Flip(p[0])
				delta += ev.FlipDelta(p[1])
				if delta <= 0 || rng.Float64() < math.Exp(-beta*delta) {
					ev.Flip(p[1])
					res.Accepted++
					if delta < 0 {
						record()
					}
				} else {
					ev.Flip(p[0])
				}
				continue
			}
			v := pool[rng.Intn(len(pool))]
			delta := ev.FlipDelta(v)
			if delta <= 0 || rng.Float64() < math.Exp(-beta*delta) {
				ev.Flip(v)
				res.Accepted++
				if delta < 0 {
					record()
				}
			}
		}
		record()
		beta *= ratio
		if opt.Progress != nil {
			opt.Progress(s+1, bestObj, bestFeas)
		}
	}

	if !opt.NoPolish && !cancelled {
		ev.Reset(best)
		improved := true
		for improved {
			improved = false
			for _, v := range pool {
				if ev.FlipDelta(v) < -1e-12 {
					ev.Flip(v)
					res.Flips++
					improved = true
				}
			}
			if usePairs {
				for _, p := range pairs {
					delta := ev.Flip(p[0])
					delta += ev.FlipDelta(p[1])
					if delta < -1e-12 {
						ev.Flip(p[1])
						res.Flips++
						improved = true
					} else {
						ev.Flip(p[0])
					}
				}
			}
		}
		record()
	}

	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

// refEstimateSchedule is the historical EstimateSchedule, verbatim.
func refEstimateSchedule(m *cqm.Model, penalty float64, rng *rand.Rand) (betaStart, betaEnd float64) {
	n := m.NumVars()
	if n == 0 {
		return 1, 10
	}
	ev := refeval.New(m, penalty)
	state := make([]bool, n)
	var maxUp, sumUp float64
	var count int
	for trial := 0; trial < 8; trial++ {
		for i := range state {
			state[i] = rng.Intn(2) == 0
		}
		ev.Reset(state)
		for k := 0; k < 4*n; k++ {
			v := cqm.VarID(rng.Intn(n))
			d := ev.FlipDelta(v)
			if d > 0 {
				sumUp += d
				count++
				if d > maxUp {
					maxUp = d
				}
			}
			ev.Flip(v)
		}
	}
	if count == 0 || sumUp == 0 {
		return 1, 10
	}
	avgUp := sumUp / float64(count)
	betaStart = -math.Log(0.8) / avgUp
	betaEnd = -math.Log(1e-4) / math.Max(avgUp, maxUp/8)
	if betaEnd <= betaStart {
		betaEnd = betaStart * 100
	}
	return betaStart, betaEnd
}

// refTempering is the historical sequential ParallelTempering, verbatim.
func refTempering(m *cqm.Model, opt PTOptions) Result {
	if opt.Replicas < 2 {
		opt.Replicas = 2
	}
	if opt.ExchangeEvery <= 0 {
		opt.ExchangeEvery = 10
	}
	base := opt.Base
	if base.Sweeps <= 0 {
		base.Sweeps = DefaultOptions().Sweeps
	}
	if base.Penalty <= 0 {
		base.Penalty = 1
	}
	rng := rand.New(rand.NewSource(base.Seed))
	if base.BetaStart <= 0 || base.BetaEnd <= 0 {
		bs, be := refEstimateSchedule(m, base.Penalty, rng)
		if base.BetaStart <= 0 {
			base.BetaStart = bs
		}
		if base.BetaEnd <= 0 {
			base.BetaEnd = be
		}
	}

	n := m.NumVars()
	betas := make([]float64, opt.Replicas)
	for r := range betas {
		f := float64(r) / float64(opt.Replicas-1)
		betas[r] = base.BetaStart * math.Pow(base.BetaEnd/base.BetaStart, f)
	}

	evs := make([]*refeval.Eval, opt.Replicas)
	rngs := make([]*rand.Rand, opt.Replicas)
	pool := make([]cqm.VarID, 0, n)
	for i := 0; i < n; i++ {
		if _, frozen := base.Frozen[cqm.VarID(i)]; !frozen {
			pool = append(pool, cqm.VarID(i))
		}
	}
	for r := range evs {
		evs[r] = refeval.New(m, base.Penalty)
		rngs[r] = rand.New(rand.NewSource(base.Seed*31 + int64(r)))
		state := make([]bool, n)
		for i := range state {
			state[i] = rngs[r].Intn(2) == 0
		}
		for v, val := range base.Frozen {
			state[v] = val
		}
		evs[r].Reset(state)
	}

	res := Result{Sweeps: base.Sweeps}
	var best []bool
	bestObj := math.Inf(1)
	bestFeas := false
	record := func(ev *refeval.Eval) {
		feas := ev.Feasible(feasTol)
		obj := ev.ObjectiveValue()
		if (feas && !bestFeas) || (feas == bestFeas && obj < bestObj) {
			bestFeas, bestObj = feas, obj
			best = ev.Assignment()
		}
	}
	for r := range evs {
		record(evs[r])
	}
	if len(pool) == 0 {
		res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
		return res
	}

	growAt := base.Sweeps / 4
	for s := 0; s < base.Sweeps; s++ {
		if base.Stop != nil && base.Stop() {
			res.Sweeps = s
			break
		}
		if base.PenaltyGrowth > 1 && growAt > 0 && s > 0 && s%growAt == 0 {
			for r := range evs {
				evs[r].ScalePenalties(base.PenaltyGrowth)
			}
			res.PenaltyRescales++
		}
		for r := range evs {
			ev, beta, rr := evs[r], betas[r], rngs[r]
			for range pool {
				v := pool[rr.Intn(len(pool))]
				delta := ev.FlipDelta(v)
				res.Flips++
				if delta <= 0 || rr.Float64() < math.Exp(-beta*delta) {
					ev.Flip(v)
					res.Accepted++
				}
			}
			record(ev)
		}
		if s%opt.ExchangeEvery == opt.ExchangeEvery-1 {
			for r := 0; r+1 < opt.Replicas; r++ {
				if base.Stop != nil && base.Stop() {
					break
				}
				dBeta := betas[r+1] - betas[r]
				dE := evs[r].Energy() - evs[r+1].Energy()
				if dBeta*dE > 0 || rng.Float64() < math.Exp(dBeta*dE) {
					a, b := evs[r].Assignment(), evs[r+1].Assignment()
					evs[r].Reset(b)
					evs[r+1].Reset(a)
					res.Swaps++
				}
			}
		}
		if base.Progress != nil {
			base.Progress(s+1, bestObj, bestFeas)
		}
	}
	res.Best, res.BestObjective, res.BestFeasible = best, bestObj, bestFeas
	return res
}

// goldenModel builds a small constrained model with fractional
// coefficients — bit-identity must hold for arbitrary floats, not just
// integral test data.
func goldenModel(seed int64) *cqm.Model {
	rng := rand.New(rand.NewSource(seed))
	m := cqm.New()
	n := 12 + rng.Intn(20)
	vars := make([]cqm.VarID, n)
	for i := range vars {
		vars[i] = m.AddBinary("x")
	}
	coef := func() float64 { return float64(rng.Intn(17)-8) + 0.125*float64(rng.Intn(8)) }
	for k := 0; k < 2*n; k++ {
		m.AddObjectiveQuad(vars[rng.Intn(n)], vars[rng.Intn(n)], coef())
	}
	for k := 0; k < 3; k++ {
		var e cqm.LinExpr
		for t := 0; t < 4+rng.Intn(n/2); t++ {
			e.Add(vars[rng.Intn(n)], coef())
		}
		e.Offset = coef()
		m.AddObjectiveSquared(e)
	}
	for k := 0; k < 3; k++ {
		var e cqm.LinExpr
		for t := 0; t < 3+rng.Intn(n/2); t++ {
			e.Add(vars[rng.Intn(n)], coef())
		}
		m.AddConstraint("c", e, cqm.Sense(rng.Intn(3)), coef())
	}
	return m
}

func sameResult(t *testing.T, tag string, want, got Result) {
	t.Helper()
	if got.BestObjective != want.BestObjective {
		t.Errorf("%s: BestObjective = %v, golden %v", tag, got.BestObjective, want.BestObjective)
	}
	if got.BestFeasible != want.BestFeasible {
		t.Errorf("%s: BestFeasible = %v, golden %v", tag, got.BestFeasible, want.BestFeasible)
	}
	if got.Sweeps != want.Sweeps || got.Flips != want.Flips || got.Accepted != want.Accepted {
		t.Errorf("%s: counters (sweeps, flips, accepted) = (%d, %d, %d), golden (%d, %d, %d)",
			tag, got.Sweeps, got.Flips, got.Accepted, want.Sweeps, want.Flips, want.Accepted)
	}
	if got.PenaltyRescales != want.PenaltyRescales {
		t.Errorf("%s: PenaltyRescales = %d, golden %d", tag, got.PenaltyRescales, want.PenaltyRescales)
	}
	if got.Swaps != want.Swaps {
		t.Errorf("%s: Swaps = %d, golden %d", tag, got.Swaps, want.Swaps)
	}
	if len(got.Best) != len(want.Best) {
		t.Fatalf("%s: Best has %d vars, golden %d", tag, len(got.Best), len(want.Best))
	}
	for i := range want.Best {
		if got.Best[i] != want.Best[i] {
			t.Errorf("%s: Best[%d] = %v, golden %v", tag, i, got.Best[i], want.Best[i])
			break
		}
	}
}

func TestAnnealMatchesGoldenTrajectory(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := goldenModel(100 + seed)
		pairs := [][2]cqm.VarID{{0, 1}, {2, 3}, {4, 5}}
		variants := []struct {
			tag string
			opt Options
		}{
			{"plain", Options{Sweeps: 60, Seed: seed, Penalty: 2, PenaltyGrowth: 4, BetaStart: 0.1, BetaEnd: 8}},
			{"estimated-schedule", Options{Sweeps: 40, Seed: seed, Penalty: 1.5, PenaltyGrowth: 3}},
			{"no-polish", Options{Sweeps: 60, Seed: seed, Penalty: 2, PenaltyGrowth: 4, BetaStart: 0.1, BetaEnd: 8, NoPolish: true}},
			{"pairs", Options{Sweeps: 50, Seed: seed, Penalty: 2, BetaStart: 0.2, BetaEnd: 6, Pairs: pairs, PairProb: 0.3}},
			{"frozen", Options{Sweeps: 50, Seed: seed, Penalty: 2, BetaStart: 0.2, BetaEnd: 6, Pairs: pairs, PairProb: 0.25,
				Frozen: map[cqm.VarID]bool{1: true, 7: false}}},
			{"warm-start", Options{Sweeps: 30, Seed: seed, Penalty: 1, BetaStart: 0.5, BetaEnd: 10,
				Initial: make([]bool, m.NumVars())}},
		}
		for _, v := range variants {
			want := refAnneal(m, v.opt)
			got := Anneal(m, v.opt)
			sameResult(t, v.tag, want, got)
			// A second run reuses pooled scratch; it must be untouched by
			// the first run's leftovers.
			again := Anneal(m, v.opt)
			sameResult(t, v.tag+"/pooled-rerun", want, again)
		}
	}
}

func TestParallelTemperingMatchesGoldenTrajectory(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		m := goldenModel(200 + seed)
		variants := []struct {
			tag string
			opt PTOptions
		}{
			{"plain", PTOptions{Base: Options{Sweeps: 60, Seed: seed, Penalty: 2, PenaltyGrowth: 4, BetaStart: 0.1, BetaEnd: 8},
				Replicas: 4, ExchangeEvery: 5}},
			{"odd-segments", PTOptions{Base: Options{Sweeps: 47, Seed: seed, Penalty: 1.5, BetaStart: 0.2, BetaEnd: 6},
				Replicas: 3, ExchangeEvery: 7}},
			{"estimated-schedule", PTOptions{Base: Options{Sweeps: 30, Seed: seed, Penalty: 1, PenaltyGrowth: 2},
				Replicas: 2, ExchangeEvery: 4}},
			{"frozen", PTOptions{Base: Options{Sweeps: 40, Seed: seed, Penalty: 2, BetaStart: 0.1, BetaEnd: 8,
				Frozen: map[cqm.VarID]bool{0: true, 5: false}}, Replicas: 3, ExchangeEvery: 5}},
		}
		for _, v := range variants {
			want := refTempering(m, v.opt)
			got := ParallelTempering(m, v.opt)
			sameResult(t, v.tag, want, got)
		}
	}
}

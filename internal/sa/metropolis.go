package sa

import "math"

// expFloor is the smallest bd = beta*delta for which math.Exp(-bd) is
// exactly zero in float64: beyond it the Metropolis test cannot pass
// for any u in [0, 1).
const expFloor = 746

// metropolisAccept decides an uphill Metropolis move: it returns
// exactly u < math.Exp(-bd) for bd > 0, but routes the overwhelming
// majority of decisions through cheap polynomial bounds instead of the
// exp call that otherwise dominates the annealing profile.
//
// The short-circuits are strict mathematical bounds with float margins
// far above the arithmetic error, so the decision is bit-identical to
// the direct formulation (the golden trajectory tests and
// TestMetropolisAcceptMatchesExp hold it to that):
//
//   - accept when u < 1 - bd + bd²/2 - bd³/6: the cubic Taylor
//     truncation of e^-bd with an alternating remainder, so it
//     underestimates e^-bd by bd⁴/24·e^-θbd — at least ~4e-14 over the
//     guarded range, versus ~1e-15 of accumulated rounding.
//   - reject when u·(1 + bd + bd²/2 + bd³/6) >= 1: e^bd exceeds its
//     cubic truncation by bd⁴/24, so 1/q overestimates e^-bd by the
//     same safe margin.
//
// Only u landing between the two bounds — a band whose width shrinks
// as bd⁴ — pays for math.Exp. Below bd = 1e-3 the cubic margins thin
// toward the rounding noise, so the quadratic-margin linear bounds
// take over; below 1e-7 (where even those margins drown) the code just
// calls exp, which is vanishingly rare for real schedules.
func metropolisAccept(u, bd float64) bool {
	if bd >= expFloor {
		return false
	}
	if bd >= 1e-3 {
		if bd < 1 {
			if u < 1-bd+bd*bd*0.5-bd*bd*bd*(1.0/6) {
				return true
			}
		}
		if u*(1+bd+bd*bd*0.5+bd*bd*bd*(1.0/6)) >= 1 {
			return false
		}
	} else if bd >= 1e-7 {
		if u < 1-bd {
			return true
		}
		if u*(1+bd) >= 1 {
			return false
		}
	}
	return u < math.Exp(-bd)
}

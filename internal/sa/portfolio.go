package sa

import (
	"runtime"
	"sync"

	"repro/internal/cqm"
)

// PortfolioOptions configures a multi-restart portfolio: Restarts
// independent annealing trajectories executed on Workers goroutines.
type PortfolioOptions struct {
	// Base is the per-restart configuration; each restart derives its
	// own seed from Base.Seed and the restart index.
	Base Options
	// Restarts is the number of independent trajectories.
	Restarts int
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// Initials are warm-start assignments distributed round-robin over
	// the even-indexed restarts (odd restarts always start random).
	// Base.Initial, if set, is treated as an additional entry.
	Initials [][]bool
	// Progress, when non-nil, receives per-sweep notifications tagged
	// with the restart index. Portfolio serializes invocations, so the
	// hook never runs concurrently with itself. When Progress is nil but
	// Base.Progress is set, Base.Progress is promoted into this hook
	// (serialized, restart index dropped) instead of being invoked
	// concurrently from every worker — Base.Progress is documented for
	// serial single-run use.
	Progress func(restart, sweep int, bestObjective float64, feasible bool)
}

// Portfolio runs independent annealing restarts in parallel and returns
// the best result (feasible results dominate), plus per-restart results
// for diagnostics. Selection is deterministic for a fixed seed: ties and
// ordering do not depend on goroutine scheduling because results are
// reduced by restart index.
func Portfolio(m *cqm.Model, opt PortfolioOptions) (Result, []Result) {
	if opt.Restarts <= 0 {
		opt.Restarts = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Restarts {
		workers = opt.Restarts
	}
	initials := opt.Initials
	if opt.Base.Initial != nil {
		initials = append(append([][]bool(nil), initials...), opt.Base.Initial)
	}
	// Base.Progress is a per-run callback documented for serial use; a
	// portfolio runs Base on concurrent workers, so promote it into the
	// restart-tagged portfolio hook (serialized below) instead of letting
	// every worker invoke it concurrently and untagged.
	if opt.Progress == nil && opt.Base.Progress != nil {
		baseProgress := opt.Base.Progress
		opt.Progress = func(_, sweep int, best float64, feas bool) {
			baseProgress(sweep, best, feas)
		}
	}
	opt.Base.Progress = nil
	if opt.Progress != nil {
		var mu sync.Mutex
		serial := opt.Progress
		opt.Progress = func(restart, sweep int, best float64, feas bool) {
			mu.Lock()
			defer mu.Unlock()
			serial(restart, sweep, best, feas)
		}
	}
	results := make([]Result, opt.Restarts)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				o := opt.Base
				o.Seed = opt.Base.Seed*1_000_003 + int64(idx)*7919 + 1
				// Alternate warm and cold starts: even restarts cycle
				// through the provided initial assignments, odd restarts
				// explore from random states.
				o.Initial = nil
				if len(initials) > 0 && idx%2 == 0 {
					o.Initial = initials[(idx/2)%len(initials)]
				}
				if opt.Progress != nil {
					restart := idx
					o.Progress = func(sweep int, best float64, feas bool) {
						opt.Progress(restart, sweep, best, feas)
					}
				}
				results[idx] = Anneal(m, o)
			}
		}()
	}
	for i := 0; i < opt.Restarts; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	best := results[0]
	for _, r := range results[1:] {
		if Better(r, best) {
			best = r
		}
	}
	return best, results
}

// Better reports whether result a should be preferred over b: feasible
// beats infeasible, then lower objective wins.
func Better(a, b Result) bool {
	if a.BestFeasible != b.BestFeasible {
		return a.BestFeasible
	}
	return a.BestObjective < b.BestObjective
}

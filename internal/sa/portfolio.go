package sa

import (
	"runtime"
	"sync"

	"repro/internal/cqm"
)

// PortfolioOptions configures a multi-restart portfolio: Restarts
// independent annealing trajectories executed on Workers goroutines.
type PortfolioOptions struct {
	// Base is the per-restart configuration; each restart derives its
	// own seed from Base.Seed and the restart index.
	Base Options
	// Restarts is the number of independent trajectories.
	Restarts int
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// Initials are warm-start assignments distributed round-robin over
	// the even-indexed restarts (odd restarts always start random).
	// Base.Initial, if set, is treated as an additional entry.
	Initials [][]bool
	// Progress, when non-nil, receives per-sweep notifications tagged
	// with the restart index. It is called from worker goroutines and
	// must be safe for concurrent use (see solve.SerialProgress).
	Progress func(restart, sweep int, bestObjective float64, feasible bool)
}

// Portfolio runs independent annealing restarts in parallel and returns
// the best result (feasible results dominate), plus per-restart results
// for diagnostics. Selection is deterministic for a fixed seed: ties and
// ordering do not depend on goroutine scheduling because results are
// reduced by restart index.
func Portfolio(m *cqm.Model, opt PortfolioOptions) (Result, []Result) {
	if opt.Restarts <= 0 {
		opt.Restarts = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Restarts {
		workers = opt.Restarts
	}
	initials := opt.Initials
	if opt.Base.Initial != nil {
		initials = append(append([][]bool(nil), initials...), opt.Base.Initial)
	}
	results := make([]Result, opt.Restarts)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				o := opt.Base
				o.Seed = opt.Base.Seed*1_000_003 + int64(idx)*7919 + 1
				// Alternate warm and cold starts: even restarts cycle
				// through the provided initial assignments, odd restarts
				// explore from random states.
				o.Initial = nil
				if len(initials) > 0 && idx%2 == 0 {
					o.Initial = initials[(idx/2)%len(initials)]
				}
				if opt.Progress != nil {
					restart := idx
					o.Progress = func(sweep int, best float64, feas bool) {
						opt.Progress(restart, sweep, best, feas)
					}
				}
				results[idx] = Anneal(m, o)
			}
		}()
	}
	for i := 0; i < opt.Restarts; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	best := results[0]
	for _, r := range results[1:] {
		if Better(r, best) {
			best = r
		}
	}
	return best, results
}

// Better reports whether result a should be preferred over b: feasible
// beats infeasible, then lower objective wins.
func Better(a, b Result) bool {
	if a.BestFeasible != b.BestFeasible {
		return a.BestFeasible
	}
	return a.BestObjective < b.BestObjective
}

package sa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cqm"
)

// partitionModel builds min (sum_i a_i x_i - target)^2, a two-way number
// partitioning objective with known optimum 0 for sets that split evenly.
func partitionModel(weights []float64, target float64) *cqm.Model {
	m := cqm.New()
	var e cqm.LinExpr
	for _, w := range weights {
		v := m.AddBinary("x")
		e.Add(v, w)
	}
	e.Offset = -target
	m.AddObjectiveSquared(e)
	return m
}

// bruteForceOptimum exhaustively minimizes the objective over feasible
// assignments; it returns +Inf if nothing is feasible.
func bruteForceOptimum(m *cqm.Model) float64 {
	n := m.NumVars()
	best := math.Inf(1)
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
		}
		if !m.Feasible(x, 1e-9) {
			continue
		}
		if obj := m.Objective(x); obj < best {
			best = obj
		}
	}
	return best
}

func TestAnnealSolvesEasyPartition(t *testing.T) {
	// 1..8 sums to 36; a perfect half of 18 exists.
	m := partitionModel([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 18)
	res := Anneal(m, Options{Sweeps: 200, Seed: 42, Penalty: 1})
	if !res.BestFeasible {
		t.Fatal("unconstrained model reported infeasible")
	}
	if res.BestObjective != 0 {
		t.Fatalf("BestObjective = %v, want 0", res.BestObjective)
	}
	if res.Flips == 0 || res.Sweeps != 200 {
		t.Fatalf("work counters: %+v", res)
	}
}

func TestAnnealRespectsFrozenVariables(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5)
	frozen := map[cqm.VarID]bool{0: false} // forbid the single-element optimum
	res := Anneal(m, Options{Sweeps: 300, Seed: 7, Frozen: frozen})
	if res.Best[0] {
		t.Fatal("annealer flipped a frozen variable")
	}
	// Optimum with x0 = 0 is {3,2}, objective 0.
	if res.BestObjective != 0 {
		t.Fatalf("BestObjective = %v, want 0 via {3,2}", res.BestObjective)
	}
}

func TestAnnealAllFrozen(t *testing.T) {
	m := partitionModel([]float64{1, 2}, 3)
	frozen := map[cqm.VarID]bool{0: true, 1: true}
	res := Anneal(m, Options{Sweeps: 10, Seed: 1, Frozen: frozen})
	if !res.Best[0] || !res.Best[1] {
		t.Fatal("frozen assignment not respected")
	}
	if res.BestObjective != 0 {
		t.Fatalf("objective = %v", res.BestObjective)
	}
}

func TestAnnealFindsFeasibleConstrainedOptimum(t *testing.T) {
	// Objective rewards turning everything on; a cardinality constraint
	// caps the count at 2; optimum turns on the two largest rewards.
	m := cqm.New()
	rewards := []float64{-5, -3, -2, -1}
	var sum cqm.LinExpr
	for _, r := range rewards {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, r)
		sum.Add(v, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, 2)
	res := Anneal(m, Options{Sweeps: 400, Seed: 3, Penalty: 2, PenaltyGrowth: 4})
	if !res.BestFeasible {
		t.Fatal("no feasible solution found")
	}
	if got, want := res.BestObjective, -8.0; got != want {
		t.Fatalf("BestObjective = %v, want %v", got, want)
	}
}

func TestAnnealMatchesBruteForceOnRandomConstrainedModels(t *testing.T) {
	// For small random constrained models with a generous budget, the
	// portfolio must find the exact feasible optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		m := cqm.New()
		var all cqm.LinExpr
		var sq cqm.LinExpr
		for i := 0; i < n; i++ {
			v := m.AddBinary("x")
			m.AddObjectiveLinear(v, float64(rng.Intn(11)-5))
			sq.Add(v, float64(rng.Intn(5)-2))
			all.Add(v, 1)
		}
		sq.Offset = float64(rng.Intn(3))
		m.AddObjectiveSquared(sq)
		m.AddConstraint("card", all, cqm.Le, float64(1+rng.Intn(n)))
		want := bruteForceOptimum(m)
		best, _ := Portfolio(m, PortfolioOptions{
			Base:     Options{Sweeps: 150, Seed: seed, Penalty: 2, PenaltyGrowth: 4},
			Restarts: 6,
			Workers:  3,
		})
		if !best.BestFeasible {
			return false
		}
		return math.Abs(best.BestObjective-want) < 1e-9
	}
	// Pinned corpus: solver success within a fixed budget is an
	// empirical property of the configuration, not a theorem.
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioDeterministicForSeed(t *testing.T) {
	m := partitionModel([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 15)
	opt := PortfolioOptions{Base: Options{Sweeps: 100, Seed: 99}, Restarts: 5, Workers: 4}
	a, _ := Portfolio(m, opt)
	b, _ := Portfolio(m, opt)
	if a.BestObjective != b.BestObjective {
		t.Fatalf("nondeterministic portfolio: %v vs %v", a.BestObjective, b.BestObjective)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("nondeterministic best assignment")
		}
	}
}

func TestPortfolioReturnsAllResults(t *testing.T) {
	m := partitionModel([]float64{1, 2, 3}, 3)
	best, all := Portfolio(m, PortfolioOptions{Base: Options{Sweeps: 50, Seed: 5}, Restarts: 7})
	if len(all) != 7 {
		t.Fatalf("got %d results, want 7", len(all))
	}
	for _, r := range all {
		if Better(r, best) {
			t.Fatal("Portfolio did not return the best result")
		}
	}
}

func TestBetterOrdering(t *testing.T) {
	feasLow := Result{BestFeasible: true, BestObjective: 1}
	feasHigh := Result{BestFeasible: true, BestObjective: 5}
	infeasLow := Result{BestFeasible: false, BestObjective: -10}
	if !Better(feasLow, feasHigh) {
		t.Fatal("lower objective should win among feasible")
	}
	if !Better(feasHigh, infeasLow) {
		t.Fatal("feasible should beat infeasible regardless of objective")
	}
	if Better(infeasLow, feasLow) {
		t.Fatal("infeasible must not beat feasible")
	}
}

func TestEstimateScheduleSane(t *testing.T) {
	m := partitionModel([]float64{2, 4, 8, 16}, 15)
	rng := rand.New(rand.NewSource(1))
	bs, be := EstimateSchedule(m, 1, rng)
	if bs <= 0 || be <= bs {
		t.Fatalf("EstimateSchedule = (%v, %v)", bs, be)
	}
	// Degenerate flat model falls back to defaults.
	flat := cqm.New()
	flat.AddBinary("a")
	bs, be = EstimateSchedule(flat, 1, rng)
	if bs <= 0 || be <= bs {
		t.Fatalf("flat schedule = (%v, %v)", bs, be)
	}
	// Empty model.
	bs, be = EstimateSchedule(cqm.New(), 1, rng)
	if bs != 1 || be != 10 {
		t.Fatalf("empty schedule = (%v, %v)", bs, be)
	}
}

func TestParallelTemperingSolvesConstrainedModel(t *testing.T) {
	m := cqm.New()
	rewards := []float64{-7, -5, -3, -2, -1, -1}
	var sum cqm.LinExpr
	for _, r := range rewards {
		v := m.AddBinary("x")
		m.AddObjectiveLinear(v, r)
		sum.Add(v, 1)
	}
	m.AddConstraint("card", sum, cqm.Le, 3)
	res := ParallelTempering(m, PTOptions{
		Base:     Options{Sweeps: 200, Seed: 11, Penalty: 2, PenaltyGrowth: 4},
		Replicas: 4,
	})
	if !res.BestFeasible {
		t.Fatal("PT found no feasible solution")
	}
	if got, want := res.BestObjective, -15.0; got != want {
		t.Fatalf("PT objective = %v, want %v", got, want)
	}
}

func TestParallelTemperingRespectsFrozen(t *testing.T) {
	m := partitionModel([]float64{5, 3, 2}, 5)
	res := ParallelTempering(m, PTOptions{
		Base:     Options{Sweeps: 100, Seed: 2, Frozen: map[cqm.VarID]bool{0: false}},
		Replicas: 3,
	})
	if res.Best[0] {
		t.Fatal("PT flipped a frozen variable")
	}
}

func TestAnnealBestNeverWorsensProperty(t *testing.T) {
	// On a fixed seed corpus, more sweeps never reports a worse best.
	// (Not a theorem — the schedules differ — so the corpus is pinned.)
	f := func(seed int64) bool {
		m := partitionModel([]float64{4, 7, 1, 3, 9, 2}, 13)
		short := Anneal(m, Options{Sweeps: 20, Seed: seed})
		long := Anneal(m, Options{Sweeps: 200, Seed: seed})
		if short.BestFeasible && long.BestFeasible {
			return long.BestObjective <= short.BestObjective+1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestPolishReachesLocalOptimum(t *testing.T) {
	// After polishing, no single flip may improve the penalized energy
	// of the returned best state.
	m := partitionModel([]float64{7, 5, 4, 3, 2, 2, 1}, 12)
	res := Anneal(m, Options{Sweeps: 5, Seed: 9, Penalty: 1})
	ev := cqm.NewEvaluator(m, 1)
	// Reconstruct the final penalty scale: growth happened 0 times with
	// 5 sweeps (growAt = 1, scaled at s=1..4 => 4 times by default 1).
	// Use the raw objective instead: for this unconstrained model the
	// penalized energy IS the objective.
	ev.Reset(res.Best)
	for v := 0; v < m.NumVars(); v++ {
		if ev.FlipDelta(cqm.VarID(v)) < -1e-9 {
			t.Fatalf("flip of %d improves the polished state", v)
		}
	}
}

func TestPolishCanBeDisabled(t *testing.T) {
	m := partitionModel([]float64{9, 8, 7, 1}, 12)
	a := Anneal(m, Options{Sweeps: 3, Seed: 4})
	b := Anneal(m, Options{Sweeps: 3, Seed: 4, NoPolish: true})
	// Polish never returns a worse best.
	if a.BestObjective > b.BestObjective+1e-12 {
		t.Fatalf("polish worsened result: %v vs %v", a.BestObjective, b.BestObjective)
	}
}

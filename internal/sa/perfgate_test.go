package sa

import (
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

// gateRun builds a warmed annealRun on benchModel for direct inner-loop
// measurement.
func gateRun(pairProb float64) *annealRun {
	m := benchModel()
	n := m.NumVars()
	sc := getScratch(m, 2)
	rng := rand.New(rand.NewSource(7))
	state := sc.state[:n]
	for i := range state {
		state[i] = rng.Intn(2) == 0
	}
	sc.ev.Reset(state)
	pool := sc.pool[:0]
	for i := 0; i < n; i++ {
		pool = append(pool, cqm.VarID(i))
	}
	sc.pool = pool
	pairs := sc.pairs[:0]
	for i := 0; i+1 < n; i += 2 {
		pairs = append(pairs, [2]cqm.VarID{cqm.VarID(i), cqm.VarID(i + 1)})
	}
	sc.pairs = pairs
	run := &annealRun{
		ev:       sc.ev,
		rng:      rng,
		pool:     pool,
		pairs:    pairs,
		pairProb: pairProb,
		usePairs: pairProb > 0,
		best:     sc.best,
		bestObj:  sc.ev.ObjectiveValue(),
		bestFeas: sc.ev.Feasible(feasTol),
	}
	run.best.CopyFrom(sc.ev.Words())
	return run
}

// TestPerfGateSweepAllocFree is a CI gate: the Metropolis sweep must not
// allocate, with or without pair co-flips. A regression here means the
// hot loop grew a heap allocation per move or per sweep.
func TestPerfGateSweepAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name     string
		pairProb float64
	}{
		{"singles", 0},
		{"pairs", 0.5},
	} {
		run := gateRun(tc.pairProb)
		beta := 0.2
		if allocs := testing.AllocsPerRun(50, func() {
			run.sweep(beta)
			beta *= 1.05
		}); allocs != 0 {
			t.Errorf("%s: sweep allocates %.1f allocs/run, want 0", tc.name, allocs)
		}
	}
}

// TestPerfGatePolishAllocFree is a CI gate: the zero-temperature descent
// must not allocate.
func TestPerfGatePolishAllocFree(t *testing.T) {
	run := gateRun(0.5)
	run.polish() // reach a local optimum first
	if allocs := testing.AllocsPerRun(20, run.polish); allocs != 0 {
		t.Errorf("polish allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestPerfGateAnnealSteadyStateAllocs is a CI gate: a full Anneal call
// with a pooled scratch and a fixed schedule performs only O(1) setup
// allocations (the run RNG and the returned assignment), independent of
// sweep count and model size.
func TestPerfGateAnnealSteadyStateAllocs(t *testing.T) {
	m := benchModel()
	opt := Options{Sweeps: 20, Seed: 3, Penalty: 2, BetaStart: 0.14, BetaEnd: 14, NoPolish: true}
	Anneal(m, opt) // warm the scratch pool
	allocs := testing.AllocsPerRun(30, func() { Anneal(m, opt) })
	// The bound is loose only to tolerate a GC emptying the sync.Pool
	// mid-measurement; steady state is ~4 (RNG source, RNG, Best slice).
	if allocs > 16 {
		t.Errorf("steady-state Anneal allocates %.1f allocs/run, want <= 16", allocs)
	}
}

// TestPerfGateFlipsDeterministic is a CI gate: with NoPolish the flip
// count is exactly Sweeps x pool size — machine-independent, so a
// benchdiff of the flips metric catches a silently shrunk or inflated
// workload where ns/op noise could not.
func TestPerfGateFlipsDeterministic(t *testing.T) {
	m := benchModel()
	n := m.NumVars()

	res := Anneal(m, Options{Sweeps: 50, Seed: 1, Penalty: 2, PenaltyGrowth: 4,
		BetaStart: 0.14, BetaEnd: 14, NoPolish: true})
	if want := int64(50 * n); res.Flips != want {
		t.Errorf("Anneal flips = %d, want %d", res.Flips, want)
	}

	frozen := map[cqm.VarID]bool{0: true, 5: false, 9: true}
	res = Anneal(m, Options{Sweeps: 12, Seed: 2, Penalty: 2,
		BetaStart: 0.14, BetaEnd: 14, NoPolish: true, Frozen: frozen})
	if want := int64(12 * (n - len(frozen))); res.Flips != want {
		t.Errorf("Anneal flips with frozen vars = %d, want %d", res.Flips, want)
	}

	pt := ParallelTempering(m, PTOptions{
		Base:     Options{Sweeps: 30, Seed: 1, Penalty: 2, BetaStart: 0.14, BetaEnd: 14},
		Replicas: 4,
	})
	if want := int64(4 * 30 * n); pt.Flips != want {
		t.Errorf("ParallelTempering flips = %d, want %d", pt.Flips, want)
	}
}

package sa

import (
	"context"
	"testing"
	"time"

	"repro/internal/cqm"
	"repro/internal/solve"
)

// TestEngineFastPathEmptyModel: with zero variables there is nothing to
// search; the engine must return immediately with populated Stats. The
// fake clock never advances here, so a budget-bounded spin through the
// sweep loop would never terminate — completion is itself the proof.
func TestEngineFastPathEmptyModel(t *testing.T) {
	m := cqm.New()
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := NewEngine().Solve(context.Background(), m,
		solve.WithClock(clk), solve.WithBudget(time.Second), solve.WithSweeps(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != 0 || !res.Feasible {
		t.Fatalf("empty-model result = %+v", res)
	}
	if !res.Stats.Proven || res.Stats.Reads != 1 {
		t.Fatalf("fast path Stats = %+v, want Proven with Reads 1", res.Stats)
	}
	if res.Stats.Sweeps != 0 || res.Stats.Interrupted {
		t.Fatalf("fast path claims work it did not do: %+v", res.Stats)
	}
}

// TestEngineFastPathAllFrozen: every variable pinned by the base
// configuration leaves an empty move set; the single reachable
// assignment comes back immediately, evaluated from scratch.
func TestEngineFastPathAllFrozen(t *testing.T) {
	m := cqm.New()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	var e cqm.LinExpr
	e.Add(a, 2)
	e.Add(b, 3)
	e.Offset = -2
	m.AddObjectiveSquared(e)

	eng := NewEngine()
	eng.Base.Frozen = map[cqm.VarID]bool{a: true, b: false}
	clk := solve.NewFake(time.Unix(0, 0))
	res, err := eng.Solve(context.Background(), m, solve.WithClock(clk), solve.WithBudget(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sample[0] || res.Sample[1] {
		t.Fatalf("Sample = %v, want frozen assignment [true false]", res.Sample)
	}
	if res.Objective != 0 {
		t.Fatalf("Objective = %v, want (2*1+3*0-2)^2 = 0", res.Objective)
	}
	if !res.Stats.Proven {
		t.Fatalf("Stats = %+v, want Proven", res.Stats)
	}
}

package sa

import (
	"math"
	"math/rand"
	"testing"
)

// TestMetropolisAcceptMatchesExp holds the short-circuited Metropolis
// test to its contract: for every (u, bd) it must decide exactly
// u < math.Exp(-bd). Random draws cover the bulk; the adversarial
// cases put u within a few ulps of exp(-bd) itself and of the
// polynomial accept/reject bounds, and bd right at the regime
// boundaries, where a margin mistake would first show.
func TestMetropolisAcceptMatchesExp(t *testing.T) {
	check := func(u, bd float64) {
		t.Helper()
		want := u < math.Exp(-bd)
		if got := metropolisAccept(u, bd); got != want {
			t.Fatalf("metropolisAccept(%v, %v) = %v, want %v (exp(-bd) = %v)",
				u, bd, got, want, math.Exp(-bd))
		}
	}

	rng := rand.New(rand.NewSource(42))
	// Random sweep over every bd regime the implementation splits on.
	scales := []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2, 5, 20, 100, 700, 746, 800}
	for _, s := range scales {
		for i := 0; i < 2000; i++ {
			bd := s * (0.5 + rng.Float64())
			check(rng.Float64(), bd)
			// u concentrated near the decision point exp(-bd).
			e := math.Exp(-bd)
			check(e*(1+(rng.Float64()-0.5)*1e-12), bd)
		}
	}

	// Exact ulp neighbours of exp(-bd): the tightest possible u.
	for i := 0; i < 20000; i++ {
		bd := math.Exp(rng.Float64()*20 - 10) // log-uniform over [e^-10, e^10]
		e := math.Exp(-bd)
		for _, u := range []float64{
			e,
			math.Nextafter(e, 0),
			math.Nextafter(e, 1),
			math.Nextafter(math.Nextafter(e, 1), 1),
		} {
			check(u, bd)
		}
	}

	// Regime boundaries and degenerate u.
	for _, bd := range []float64{1e-7, math.Nextafter(1e-7, 0), math.Nextafter(1e-7, 1),
		1e-3, math.Nextafter(1e-3, 0), math.Nextafter(1e-3, 1),
		1, math.Nextafter(1, 0), math.Nextafter(1, 2),
		745, 746, 747, 1000} {
		for _, u := range []float64{0, math.SmallestNonzeroFloat64, 0.5,
			math.Nextafter(1, 0), math.Exp(-bd)} {
			check(u, bd)
		}
	}
}

package sa

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

// benchModel is a 256-variable constrained partition model.
func benchModel() *cqm.Model {
	m := cqm.New()
	var sq, cap cqm.LinExpr
	for i := 0; i < 256; i++ {
		v := m.AddBinary("x")
		sq.Add(v, float64(1+i%13))
		cap.Add(v, 1)
	}
	sq.Offset = -800
	m.AddObjectiveSquared(sq)
	m.AddConstraint("cap", cap, cqm.Le, 128)
	return m
}

// paperScaleModel mirrors the paper's LRP encoding at realistic scale:
// procs x (procs*ncmax) assignment binaries, per-process squared load
// deviation, per-process load-cap constraints, and a global cap. At
// this size (procs=16, ncmax=7 -> 1792 vars) a slice-of-slices
// adjacency spills out of cache, which is exactly the regime the flat
// CSR layout is built for.
func paperScaleModel(procs, ncmax int) *cqm.Model {
	m := cqm.New()
	var cap cqm.LinExpr
	for i := 0; i < procs; i++ {
		var sq cqm.LinExpr
		for k := 0; k < procs*ncmax; k++ {
			v := m.AddBinary(fmt.Sprintf("x[%d,%d]", i, k))
			sq.Add(v, float64(1+k%ncmax))
			cap.Add(v, 1)
		}
		sq.Offset = -float64(procs * ncmax)
		m.AddObjectiveSquared(sq)
		m.AddConstraint("cons", sq, cqm.Le, 10)
	}
	m.AddConstraint("cap", cap, cqm.Le, float64(procs*ncmax))
	return m
}

func BenchmarkAnnealSweeps(b *testing.B) {
	m := benchModel()
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Anneal(m, Options{Sweeps: 50, Seed: int64(i), Penalty: 2, PenaltyGrowth: 4})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
}

// BenchmarkAnnealHotLoop isolates the Metropolis sweep itself: fixed
// schedule (no EstimateSchedule probe) and no polish pass, so the
// timing is the inner loop and nothing else. The flips metric is
// deterministic — Sweeps x pool size exactly — which is what lets CI
// gate on it while flips/s stays advisory.
func BenchmarkAnnealHotLoop(b *testing.B) {
	m := benchModel()
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Anneal(m, Options{Sweeps: 50, Seed: int64(i), Penalty: 2, PenaltyGrowth: 4,
			BetaStart: 0.14, BetaEnd: 14, NoPolish: true})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
	b.ReportMetric(float64(flips)/float64(b.N), "flips")
}

// BenchmarkAnnealDense runs the hot loop on the paper-scale model
// (1792 variables); BenchmarkAnnealDenseRef runs the identical
// workload on the frozen pre-CSR reference annealer, so the old-vs-new
// per-flip ratio is measurable in-repo on any machine.
func BenchmarkAnnealDense(b *testing.B) {
	m := paperScaleModel(16, 7)
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Anneal(m, Options{Sweeps: 10, Seed: int64(i), Penalty: 2, PenaltyGrowth: 4,
			BetaStart: 0.05, BetaEnd: 10, NoPolish: true})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
	b.ReportMetric(float64(flips)/float64(b.N), "flips")
}

func BenchmarkAnnealDenseRef(b *testing.B) {
	m := paperScaleModel(16, 7)
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := refAnneal(m, Options{Sweeps: 10, Seed: int64(i), Penalty: 2, PenaltyGrowth: 4,
			BetaStart: 0.05, BetaEnd: 10, NoPolish: true})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
}

func BenchmarkPortfolio4(b *testing.B) {
	m := benchModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Portfolio(m, PortfolioOptions{
			Base:     Options{Sweeps: 30, Seed: int64(i), Penalty: 2},
			Restarts: 4,
		})
	}
}

func BenchmarkParallelTempering(b *testing.B) {
	m := benchModel()
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ParallelTempering(m, PTOptions{
			Base:     Options{Sweeps: 30, Seed: int64(i), Penalty: 2},
			Replicas: 4,
		})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
	b.ReportMetric(float64(flips)/float64(b.N), "flips")
}

func BenchmarkEstimateSchedule(b *testing.B) {
	m := benchModel()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateSchedule(m, 1, rng)
	}
}

package sa

import (
	"math/rand"
	"testing"

	"repro/internal/cqm"
)

// benchModel is a 256-variable constrained partition model.
func benchModel() *cqm.Model {
	m := cqm.New()
	var sq, cap cqm.LinExpr
	for i := 0; i < 256; i++ {
		v := m.AddBinary("x")
		sq.Add(v, float64(1+i%13))
		cap.Add(v, 1)
	}
	sq.Offset = -800
	m.AddObjectiveSquared(sq)
	m.AddConstraint("cap", cap, cqm.Le, 128)
	return m
}

func BenchmarkAnnealSweeps(b *testing.B) {
	m := benchModel()
	var flips int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Anneal(m, Options{Sweeps: 50, Seed: int64(i), Penalty: 2, PenaltyGrowth: 4})
		flips += res.Flips
	}
	b.ReportMetric(float64(flips)/b.Elapsed().Seconds(), "flips/s")
}

func BenchmarkPortfolio4(b *testing.B) {
	m := benchModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Portfolio(m, PortfolioOptions{
			Base:     Options{Sweeps: 30, Seed: int64(i), Penalty: 2},
			Restarts: 4,
		})
	}
}

func BenchmarkParallelTempering(b *testing.B) {
	m := benchModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelTempering(m, PTOptions{
			Base:     Options{Sweeps: 30, Seed: int64(i), Penalty: 2},
			Replicas: 4,
		})
	}
}

func BenchmarkEstimateSchedule(b *testing.B) {
	m := benchModel()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateSchedule(m, 1, rng)
	}
}

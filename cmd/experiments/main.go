// Command experiments regenerates the paper's tables and figures:
//
//	experiments -exp table1    # complexity / logical qubits overview
//	experiments -exp fig3      # imbalance & speedup across Imb.0-Imb.4
//	experiments -exp table2    # migration counts / runtime averages
//	experiments -exp fig4      # varying node counts (+ table3)
//	experiments -exp fig5      # varying tasks per node (+ table4)
//	experiments -exp table5    # the sam(oa)^2 realistic use case
//	experiments -exp all       # everything above
//
// -fast trades solver budget for speed (useful for smoke runs); -procs /
// -tasks trim the sweep scales.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"path/filepath"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/experiments"
	"repro/internal/mxm"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/report"
	"repro/internal/shutdown"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func parseScales(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad scale list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: table1 | fig3 | table2 | fig4 | table3 | fig5 | table4 | table5 | ksweep | stability | makespan | tuning | formulations | evolution | scaling | faults | shard | batchcache | all")
		shardSize = flag.Int("shard-size", 8, "maximum processes per group for -exp shard")
		fast      = flag.Bool("fast", false, "reduced solver budget")
		seed      = flag.Int64("seed", 2024, "experiment seed")
		procsF    = flag.String("procs", "", "comma-separated node scales for fig4/table3 (default 4,8,16,32,64)")
		tasksF    = flag.String("tasks", "", "comma-separated task scales for fig5/table4 (default 8,...,2048)")
		outDir    = flag.String("out", "", "also write each artifact as .txt/.csv files into this directory")
		noMetrics = flag.Bool("no-metrics", false, "disable the observability trace (obs_snapshot/obs_events artifacts)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *fast {
		cfg = experiments.FastConfig()
	}
	cfg.Seed = *seed
	if !*noMetrics {
		cfg.Obs = obs.NewRegistry()
	}

	procScales := mxm.ProcScales()
	if *procsF != "" {
		var err error
		if procScales, err = parseScales(*procsF); err != nil {
			return err
		}
	}
	taskScales := mxm.TaskScales()
	if *tasksF != "" {
		var err error
		if taskScales, err = parseScales(*tasksF); err != nil {
			return err
		}
	}

	want := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if *exp == n {
				return true
			}
		}
		return false
	}
	// SIGINT and SIGTERM cancel the remaining solves cleanly (SIGTERM is
	// what batch schedulers send before SIGKILL).
	ctx, cancel := shutdown.Context(context.Background())
	defer cancel()

	ran := false
	sink := artifactSink{dir: *outDir}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	if want("table1") {
		ran = true
		sink.table("table1_m8", experiments.TableI(8, 50))
		sink.table("table1_m32", experiments.TableI(32, 208))
	}

	if want("fig3", "table2") {
		ran = true
		g, err := experiments.RunVaryImbalance(ctx, cfg)
		if err != nil {
			return err
		}
		if want("fig3") {
			sink.figure("fig3_imbalance", g.ImbalanceFigure("Figure 3 (left) — imbalance ratio vs imbalance level"))
			sink.figure("fig3_speedup", g.SpeedupFigure("Figure 3 (right) — speedup vs imbalance level"))
		}
		if want("table2") {
			sink.table("table2", g.AveragesTable("Table II — migrated tasks and runtime (avg over Imb.0-Imb.4)"))
		}
	}

	if want("fig4", "table3") {
		ran = true
		g, err := experiments.RunVaryProcs(ctx, cfg, procScales)
		if err != nil {
			return err
		}
		if want("fig4") {
			sink.figure("fig4_imbalance", g.ImbalanceFigure("Figure 4 (left) — imbalance ratio vs node count"))
			sink.figure("fig4_speedup", g.SpeedupFigure("Figure 4 (right) — speedup vs node count"))
		}
		if want("table3") {
			sink.table("table3", g.MigrationTable("Table III — total migrated tasks in varying node scales"))
		}
	}

	if want("fig5", "table4") {
		ran = true
		g, err := experiments.RunVaryTasks(ctx, cfg, taskScales)
		if err != nil {
			return err
		}
		if want("fig5") {
			sink.figure("fig5_imbalance", g.ImbalanceFigure("Figure 5 (left) — imbalance ratio vs tasks per node"))
			sink.figure("fig5_speedup", g.SpeedupFigure("Figure 5 (right) — speedup vs tasks per node"))
		}
		if want("table4") {
			sink.table("table4", g.MigrationTable("Table IV — total migrated tasks in varying # tasks"))
		}
	}

	if want("table5") {
		ran = true
		p := experiments.DefaultSamoaParams()
		if *fast {
			p = experiments.SamoaParams{Procs: 16, TasksPerProc: 64, MeshDepth: 10, WarmupSteps: 8, TargetImbalance: 4.1994}
		}
		cr, err := experiments.RunSamoa(ctx, cfg, p)
		if err != nil {
			return err
		}
		sink.table("table5", experiments.SamoaTable(cr))
		if *outDir != "" {
			// Persist the use case in the paper artifact's layout
			// (input_lrp/ + output_lrp/ per Appendix B).
			in, err := experiments.SamoaInput(p)
			if err != nil {
				return err
			}
			if _, err := experiments.ExportCaseArtifacts(*outDir, in, cr); err != nil {
				return err
			}
		}
	}

	if want("ksweep") {
		ran = true
		// The k parameter study (Section VI future work) on the Imb.3
		// MxM case.
		in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[3].Instance
		ks, err := experiments.DefaultKGrid(ctx, in)
		if err != nil {
			return err
		}
		points, err := experiments.RunKSweep(ctx, in, qlrb.QCQM1, ks, cfg)
		if err != nil {
			return err
		}
		sink.figure("ksweep", experiments.KSweepFigure(points, "k parameter study — Q_CQM1 on Imb.3 (8 procs x 50 tasks)"))
	}

	if want("makespan") {
		ran = true
		// End-to-end execution on the runtime simulator (beyond the
		// paper's load-metric evaluation): every method's plan applied
		// to the Imb.4 case, paying real migration costs.
		in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[4].Instance
		cr, err := experiments.RunCase(ctx, "Imb.4", in, cfg)
		if err != nil {
			return err
		}
		rc := chameleon.DefaultConfig()
		rc.LPT = true
		results, err := experiments.RunMakespan(in, cr, rc)
		if err != nil {
			return err
		}
		sink.table("makespan", experiments.MakespanTable(
			"End-to-end execution on the runtime simulator — Imb.4, 27 workers/process, LPT scheduling", results))
	}

	if want("stability") {
		ran = true
		// Run-to-run variability of the hybrid methods (Appendix C's
		// nondeterminism note) on the Imb.3 case.
		in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[3].Instance
		ks, err := experiments.DefaultKGrid(ctx, in)
		if err != nil {
			return err
		}
		var studies []experiments.Variability
		for _, form := range []qlrb.Formulation{qlrb.QCQM1, qlrb.QCQM2} {
			for _, k := range []int{ks[len(ks)/2], ks[len(ks)-1]} {
				v, err := experiments.MeasureVariability(ctx, in, form, k, 5, cfg)
				if err != nil {
					return err
				}
				studies = append(studies, v)
			}
		}
		sink.table("stability", experiments.VariabilityTable("hybrid solver run-to-run variability (5 runs each, Imb.3)", studies))
	}

	if want("tuning") {
		ran = true
		// Design-choice ablation of the hybrid solver pipeline on the
		// Imb.3 case, full formulation (the harder landscape).
		in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[3].Instance
		ks, err := experiments.DefaultKGrid(ctx, in)
		if err != nil {
			return err
		}
		points, err := experiments.RunSolverTuning(ctx, in, qlrb.QCQM2, ks[len(ks)/2], cfg)
		if err != nil {
			return err
		}
		sink.table("tuning", experiments.TuningTable(
			"Solver design-choice ablation — Q_CQM2 on Imb.3", points))
	}

	if want("formulations") {
		ran = true
		// Count-encoded vs per-task formulations on one uniform case
		// (ablation A6: what the paper's encoding buys).
		in := mxm.VaryImbalanceCases(mxm.DefaultCostModel())[2].Instance
		ks, err := experiments.DefaultKGrid(ctx, in)
		if err != nil {
			return err
		}
		rows, err := experiments.RunFormulationComparison(ctx, in, ks[len(ks)/2], cfg)
		if err != nil {
			return err
		}
		sink.table("formulations", experiments.FormulationTable(
			"Formulation comparison — Imb.2 (8 procs x 50 tasks), same budget", rows))
	}

	if want("evolution") {
		ran = true
		// Imbalance evolution over simulation time (the Figure-1 story
		// on the live AMR workload): static partition vs periodic
		// ProactLB rebalancing.
		points, err := experiments.RunEvolution(ctx, experiments.EvolutionParams{
			Procs: 8, TasksPerProc: 16, MeshDepth: 9, Steps: 24, RebalanceEvery: 4,
		}, balancer.ProactLB{})
		if err != nil {
			return err
		}
		sink.figure("evolution", experiments.EvolutionFigure(points,
			"Imbalance evolution — oscillating lake, rebalance every 4 steps"))
	}

	if want("scaling") {
		ran = true
		// Classical sampling cost vs machine scale (the systems
		// companion to Table I's qubit counts).
		for _, form := range []qlrb.Formulation{qlrb.QCQM1, qlrb.QCQM2} {
			points, err := experiments.RunScaling(form, procScales, 200, cfg.Seed)
			if err != nil {
				return err
			}
			sink.table("scaling_"+strings.ToLower(form.String()), experiments.ScalingTable(
				fmt.Sprintf("Sampler scaling — %v, 100 tasks/node, 200 sweeps, 1 read", form), points))
		}
	}

	if want("faults") {
		ran = true
		// Degradation curve of the resilient cloud path: the same
		// drifting dlb run at increasing injected fault rates. Every
		// round must complete at every rate; quality degrades gracefully
		// as fallbacks replace cloud solves.
		iters := 6
		if *fast {
			iters = 4
		}
		points, err := experiments.RunFaultSweep(ctx, cfg, experiments.DefaultFaultRates(), iters)
		if err != nil {
			return err
		}
		sink.table("faults", experiments.FaultTable(
			"Degradation under injected cloud faults — drifting workload, resilient Q_CQM1 (retry+breaker+SA fallback)", points))
	}

	if want("shard") {
		ran = true
		// Hierarchical sharded solving: (a) quality lost to decomposition
		// on paper-sized instances, monolithic vs sharded under the same
		// migration budget; (b) wall-clock scaling far beyond the
		// monolithic regime, up to M=1024 processes and ~1M tasks.
		qualScales := []int{8, 16, 32}
		rows, err := experiments.RunShardQuality(ctx, cfg, qualScales, *shardSize)
		if err != nil {
			return err
		}
		sink.table("shard_quality", experiments.ShardQualityTable(
			fmt.Sprintf("Sharded vs monolithic Q_CQM1 — same k, shard size %d", *shardSize), rows))

		scaleScales := []int{64, 256, 1024}
		tasksPerProc := 1024
		budget := 2 * time.Second
		if *fast {
			scaleScales = []int{64, 256}
			tasksPerProc = 256
			budget = 500 * time.Millisecond
		}
		points, err := experiments.RunShardScale(ctx, cfg, scaleScales, tasksPerProc, budget, 16)
		if err != nil {
			return err
		}
		sink.table("shard_scaling", experiments.ShardScaleTable(
			fmt.Sprintf("Hierarchical wall-clock scaling — shard size 16, %d tasks/node, %v budget", tasksPerProc, budget), points))
	}

	if want("batchcache") {
		ran = true
		// Replay a repetitive multi-round trace against the batching
		// coalescer + verified plan cache stacked in front of the
		// hybrid cloud client: concurrent same-round requests coalesce
		// into shared submissions, and rotated repeats of earlier
		// rounds are served from the cache without any submission.
		rounds, concurrent := 6, 8
		if *fast {
			rounds = 4
		}
		bc, err := experiments.RunBatchCache(ctx, cfg, rounds, concurrent)
		if err != nil {
			return err
		}
		sink.table("batchcache", experiments.BatchCacheTable(
			fmt.Sprintf("Batching + verified plan cache — %d rounds x %d concurrent requests, drifting shapes", rounds, concurrent), bc))
	}

	if !ran {
		return fmt.Errorf("unknown -exp %q", *exp)
	}

	// The run manifest: whatever the solvers recorded while regenerating
	// the artifacts above — per-phase spans, solver work counters, and
	// the structured event log.
	if cfg.Obs != nil && *outDir != "" {
		snap := cfg.Obs.Snapshot()
		sink.write("obs_snapshot.txt", snap.Text())
		sink.write("obs_snapshot.csv", snap.CSV())
		if err := experiments.WriteFileAtomic(filepath.Join(*outDir, "obs_events.json"), snap.WriteEvents); err != nil {
			return err
		}
		fmt.Printf("observability artifacts written to %s (obs_snapshot.txt/.csv, obs_events.json)\n", *outDir)
	}
	return nil
}

// artifactSink prints artifacts and, when dir is set, persists each as
// aligned text plus machine-readable CSV.
type artifactSink struct{ dir string }

func (s artifactSink) table(name string, t *report.Table) {
	fmt.Println(t.Render())
	if s.dir == "" {
		return
	}
	s.write(name+".txt", t.Render())
	s.write(name+".csv", t.CSV())
}

func (s artifactSink) figure(name string, f *report.Figure) {
	fmt.Println(f.Chart(12))
	fmt.Println(f.Table().Render())
	if s.dir == "" {
		return
	}
	s.write(name+".txt", f.Chart(12)+"\n"+f.Table().Render())
	s.write(name+".csv", f.Table().CSV())
}

func (s artifactSink) write(name, content string) {
	path := filepath.Join(s.dir, name)
	// Atomic (temp file + rename): a run killed mid-write never leaves a
	// truncated table or CSV under results/.
	if err := experiments.WriteStringAtomic(path, content); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
	}
}

package main

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func report(benches ...benchfmt.Result) *benchfmt.Report {
	return &benchfmt.Report{Benchmarks: benches}
}

func bench(pkg, name string, metrics map[string]float64) benchfmt.Result {
	return benchfmt.Result{Pkg: pkg, Name: name, Procs: 1, Iterations: 1, Metrics: metrics}
}

func TestDiffPassesOnIdenticalDeterministicMetrics(t *testing.T) {
	base := report(
		bench("repro/internal/sa", "BenchmarkAnnealHotLoop",
			map[string]float64{"ns/op": 500000, "flips": 12800, "flips/s": 2.5e7}),
		bench("repro", "BenchmarkTable1Qubits",
			map[string]float64{"ns/op": 1e7, "qubits_qcqm1": 7688}),
	)
	cur := report(
		bench("repro/internal/sa", "BenchmarkAnnealHotLoop",
			map[string]float64{"ns/op": 900000, "flips": 12800, "flips/s": 1.4e7}),
		bench("repro", "BenchmarkTable1Qubits",
			map[string]float64{"ns/op": 2e7, "qubits_qcqm1": 7688}),
	)
	rows, failures := diff(base, cur, 0.001)
	if len(failures) != 0 {
		t.Fatalf("wall-clock slowdown must not gate, got failures %v", failures)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
}

func TestDiffFailsOnDeterministicRegression(t *testing.T) {
	cases := []struct {
		name       string
		base, cur  map[string]float64
		wantInFail string
	}{
		{"allocs grew",
			map[string]float64{"allocs/op": 0}, map[string]float64{"allocs/op": 3}, "allocs/op"},
		{"flips shrank",
			map[string]float64{"flips": 12800}, map[string]float64{"flips": 6400}, "flips"},
		{"flips inflated",
			map[string]float64{"flips": 12800}, map[string]float64{"flips": 25600}, "flips"},
		{"qubits drifted",
			map[string]float64{"qubits_qcqm1": 7688}, map[string]float64{"qubits_qcqm1": 7690}, "qubits_qcqm1"},
		{"moves shrank",
			map[string]float64{"moves": 400}, map[string]float64{"moves": 12}, "moves"},
	}
	for _, tc := range cases {
		_, failures := diff(report(bench("p", "BenchmarkX", tc.base)),
			report(bench("p", "BenchmarkX", tc.cur)), 0.001)
		if len(failures) != 1 || !strings.Contains(failures[0], tc.wantInFail) {
			t.Errorf("%s: failures = %v, want one mentioning %q", tc.name, failures, tc.wantInFail)
		}
	}
}

func TestDiffFailsOnMissingGatedBenchmark(t *testing.T) {
	base := report(bench("p", "BenchmarkX", map[string]float64{"flips": 12800, "ns/op": 1000}))
	_, failures := diff(base, report(), 0.001)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want one missing-benchmark failure", failures)
	}

	// A benchmark with only wall-clock metrics may come and go freely.
	base = report(bench("p", "BenchmarkY", map[string]float64{"ns/op": 1000}))
	if _, failures := diff(base, report(), 0.001); len(failures) != 0 {
		t.Fatalf("advisory-only benchmark must not gate when missing, got %v", failures)
	}

	// A gated metric vanishing from a still-present benchmark gates too.
	base = report(bench("p", "BenchmarkZ", map[string]float64{"flips": 12800, "ns/op": 1000}))
	cur := report(bench("p", "BenchmarkZ", map[string]float64{"ns/op": 1000}))
	if _, failures := diff(base, cur, 0.001); len(failures) != 1 {
		t.Fatalf("failures = %v, want one missing-metric failure", failures)
	}
}

func TestDiffToleratesAllocNoiseWithinTol(t *testing.T) {
	// A GC emptying a sync.Pool mid-benchmark can wiggle allocs/op
	// slightly; the tolerance knob absorbs it when the caller asks.
	base := report(bench("p", "BenchmarkX", map[string]float64{"allocs/op": 100}))
	cur := report(bench("p", "BenchmarkX", map[string]float64{"allocs/op": 101}))
	if _, failures := diff(base, cur, 0.05); len(failures) != 0 {
		t.Fatalf("1%% alloc growth under 5%% tol must pass, got %v", failures)
	}
	if _, failures := diff(base, cur, 0.001); len(failures) != 1 {
		t.Fatalf("1%% alloc growth under 0.1%% tol must fail")
	}
}

func TestWriteTableMarksRegressions(t *testing.T) {
	base := report(bench("p", "BenchmarkX", map[string]float64{"flips": 12800, "ns/op": 1000}))
	cur := report(bench("p", "BenchmarkX", map[string]float64{"flips": 6400, "ns/op": 900}))
	rows, failures := diff(base, cur, 0.001)
	var sb strings.Builder
	writeTable(&sb, rows, failures)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "**FAIL**") {
		t.Fatalf("table missing regression markers:\n%s", out)
	}
}

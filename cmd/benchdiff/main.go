// benchdiff compares two benchmark JSON reports (as written by
// `make bench-json` / cmd/benchjson) and renders a per-metric delta
// table.
//
//	benchdiff -base BENCH_7.json -new BENCH_8.json -table bench_delta.md
//
// Metrics split into two classes:
//
//   - Deterministic metrics — allocs/op, the annealers' flips and moves
//     work counters, and the qubits_* formulation sizes — are exact on
//     any machine, so a change is a real code change, never noise.
//     benchdiff exits non-zero when one regresses — beyond -tol for
//     allocs/op (a GC emptying a sync.Pool mid-run can wiggle it), with
//     exact comparison for work counters and qubit counts — or when a
//     benchmark that carried one disappears from the new report.
//   - Wall-clock metrics (ns/op, flips/s, req/s, ...) vary with the
//     host and are reported for humans but never gate.
//
// This is what lets CI block on performance-relevant regressions
// without flaking on shared-runner timing noise.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
)

// metricClass describes how one metric unit is judged.
type metricClass struct {
	deterministic bool
	// dir is +1 when higher is better, -1 when lower is better, and 0
	// when any change is a regression (exact-match metrics).
	dir int
}

// classify assigns gating semantics to a metric unit.
func classify(unit string) metricClass {
	switch unit {
	case "allocs/op":
		return metricClass{deterministic: true, dir: -1}
	case "flips", "moves":
		// Deterministic work counters: fewer means the benchmark's
		// workload silently shrank; more is impossible at a fixed budget
		// and means the workload definition changed — flag both.
		return metricClass{deterministic: true, dir: 0}
	case "flips/s", "moves/s", "req/s":
		return metricClass{dir: +1}
	}
	if strings.HasPrefix(unit, "qubits") {
		// Formulation sizes are exact; any drift is a model change.
		return metricClass{deterministic: true, dir: 0}
	}
	if strings.Contains(unit, "speedup") {
		return metricClass{dir: +1}
	}
	// ns/op, B/op, migration counts, unknown custom units: advisory,
	// lower assumed better for display.
	return metricClass{dir: -1}
}

// row is one rendered comparison line.
type row struct {
	bench, unit        string
	base, new_, deltaP float64
	gated, regressed   bool
}

// diff compares two reports and returns the table rows plus the list of
// human-readable gate failures.
func diff(base, cur *benchfmt.Report, tol float64) (rows []row, failures []string) {
	curByKey := map[string]benchfmt.Result{}
	for _, b := range cur.Benchmarks {
		curByKey[b.Pkg+"."+b.Name] = b
	}
	for _, b := range base.Benchmarks {
		key := b.Pkg + "." + b.Name
		nb, ok := curByKey[key]
		if !ok {
			for unit := range b.Metrics {
				if classify(unit).deterministic {
					failures = append(failures,
						fmt.Sprintf("%s: gated benchmark missing from new report", key))
					break
				}
			}
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := b.Metrics[unit]
			nv, ok := nb.Metrics[unit]
			cl := classify(unit)
			if !ok {
				if cl.deterministic {
					failures = append(failures,
						fmt.Sprintf("%s %s: gated metric missing from new report", key, unit))
				}
				continue
			}
			deltaP := math.Inf(1)
			if bv != 0 {
				deltaP = (nv - bv) / math.Abs(bv) * 100
			} else if nv == 0 {
				deltaP = 0
			}
			r := row{bench: key, unit: unit, base: bv, new_: nv, deltaP: deltaP, gated: cl.deterministic}
			if cl.deterministic {
				worse := false
				switch cl.dir {
				case -1:
					worse = nv > bv*(1+tol)+1e-12
				case +1:
					worse = nv < bv*(1-tol)-1e-12
				case 0:
					// Exact-match metrics: -tol does not apply, any
					// drift is a real change.
					worse = nv != bv
				}
				if worse {
					r.regressed = true
					failures = append(failures,
						fmt.Sprintf("%s %s: %s -> %s (%+.2f%%) beyond tolerance %.2g",
							key, unit, fmtVal(bv), fmtVal(nv), deltaP, tol))
				}
			}
			rows = append(rows, r)
		}
	}
	return rows, failures
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// writeTable renders the delta table as markdown.
func writeTable(w io.Writer, rows []row, failures []string) {
	fmt.Fprintln(w, "| benchmark | metric | base | new | delta | gate |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")
	for _, r := range rows {
		gate := ""
		switch {
		case r.regressed:
			gate = "REGRESSED"
		case r.gated:
			gate = "ok"
		}
		delta := fmt.Sprintf("%+.2f%%", r.deltaP)
		if math.IsInf(r.deltaP, 0) {
			delta = "n/a"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			r.bench, r.unit, fmtVal(r.base), fmtVal(r.new_), delta, gate)
	}
	for _, f := range failures {
		fmt.Fprintf(w, "\n**FAIL** %s\n", f)
	}
}

func main() {
	basePath := flag.String("base", "", "baseline benchmark JSON report (required)")
	newPath := flag.String("new", "", "new benchmark JSON report (required)")
	tol := flag.Float64("tol", 0.001, "relative tolerance for deterministic metrics")
	table := flag.String("table", "", "also write the markdown delta table to this file")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -new are required")
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	rows, failures := diff(base, cur, *tol)
	writeTable(os.Stdout, rows, failures)
	if *table != "" {
		if err := experiments.WriteFileAtomic(*table, func(w io.Writer) error {
			writeTable(w, rows, failures)
			return nil
		}); err != nil {
			fatal(err)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d deterministic metric regression(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchdiff: no deterministic regressions")
}

func load(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.ReadJSON(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// Command lrpgen generates Load Rebalancing Problem imbalance inputs in
// the paper's Appendix-B CSV format, from either the synthetic MxM
// workload (the three experiment groups of Section V-B) or the
// sam(oa)^2-style oscillating-lake simulation (Section V-C).
//
// Usage:
//
//	lrpgen -kind mxm-imb -case 3                     # Imb.3, 8 procs x 50 tasks
//	lrpgen -kind mxm-procs -procs 16                 # 16 procs x 100 tasks
//	lrpgen -kind mxm-tasks -tasks 512                # 8 procs x 512 tasks
//	lrpgen -kind samoa -procs 32 -tasks 208 -target 4.1994
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chameleon"
	"repro/internal/csvio"
	"repro/internal/experiments"
	"repro/internal/lrp"
	"repro/internal/mxm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lrpgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "mxm-imb", "generator: mxm-imb | mxm-procs | mxm-tasks | samoa | trace")
		imbCase = flag.Int("case", 2, "imbalance case 0-4 for mxm-imb")
		procs   = flag.Int("procs", 8, "process count (mxm-procs, samoa)")
		tasks   = flag.Int("tasks", 208, "tasks per process (mxm-tasks, samoa)")
		depth   = flag.Int("depth", 12, "samoa initial mesh refinement depth")
		warmup  = flag.Int("warmup", 10, "samoa warmup time steps")
		target  = flag.Float64("target", 4.1994, "samoa calibrated baseline R_imb (<=0 disables)")
		seed    = flag.Int64("seed", 2024, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		trace   = flag.String("trace", "", "execution-log file for -kind trace")
		iter    = flag.Int("iter", 0, "iteration to extract for -kind trace")
	)
	flag.Parse()

	cm := mxm.DefaultCostModel()
	var in *lrp.Instance
	var err error
	switch *kind {
	case "mxm-imb":
		cases := mxm.VaryImbalanceCases(cm)
		if *imbCase < 0 || *imbCase >= len(cases) {
			return fmt.Errorf("-case must be in [0,%d]", len(cases)-1)
		}
		in = cases[*imbCase].Instance
	case "mxm-procs":
		in = mxm.VaryProcsCase(*procs, cm, *seed).Instance
	case "mxm-tasks":
		in = mxm.VaryTasksCase(*tasks, cm, *seed).Instance
	case "trace":
		// The paper's artifact flow: parse a runtime execution log
		// (cham_logs/) into the imbalance input (input_lrp/).
		if *trace == "" {
			return fmt.Errorf("-kind trace requires -trace <file>")
		}
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		events, perr := chameleon.ParseTraceLog(f)
		f.Close()
		if perr != nil {
			return perr
		}
		in, err = chameleon.InstanceFromTrace(events, *iter, *procs)
		if err != nil {
			return err
		}
	case "samoa":
		in, err = experiments.SamoaInput(experiments.SamoaParams{
			Procs:           *procs,
			TasksPerProc:    *tasks,
			MeshDepth:       *depth,
			WarmupSteps:     *warmup,
			TargetImbalance: *target,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := csvio.WriteInput(w, in); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated: %s\n", in)
	return nil
}

// Command qulrbd is the rebalancing-as-a-service daemon: a stdlib-only
// HTTP/JSON server that accepts LRP instances, solves them through the
// failure-aware router over the repository's solver backends, verifies
// every plan, and serves job status and metrics.
//
//	qulrbd -addr :8080 -backends sa,tabu,exact
//
// API:
//
//	GET  /healthz   liveness (503 while draining)
//	POST /solve     submit {"tasks":[4,4,4],"weights":[8,2,2],...} → 202 {job}
//	GET  /jobs/{id} job status, plan and metrics when done
//	GET  /metrics   plain-text metric snapshot
//
// Admission is bounded (429 on queue/rate/budget overload), and SIGINT/
// SIGTERM triggers a graceful drain: in-flight solves finish, queued
// and new work is rejected, observability state is flushed, then the
// process exits 0.
//
// With -state-dir the daemon is crash-safe: every job transition and
// every verified cache entry is journaled to a CRC-framed WAL in that
// directory, and a restart on the same directory restores finished
// jobs (re-verified before they are served) and re-enqueues the work
// a kill -9 interrupted. -fsync picks the durability/latency trade
// (always, interval, none).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/exact"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/quantum"
	"repro/internal/route"
	"repro/internal/sa"
	"repro/internal/serve"
	"repro/internal/shutdown"
	"repro/internal/solve"
	"repro/internal/tabu"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qulrbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		backends     = flag.String("backends", "sa,tabu,exact", "comma-separated solver backends: sa,tabu,exact,hybrid,quantum")
		queueDepth   = flag.Int("queue", 64, "job queue depth (admission bound)")
		workers      = flag.Int("workers", 2, "concurrent solve workers")
		rate         = flag.Float64("rate", 10, "per-tenant admission rate (requests/sec; 0 disables)")
		burst        = flag.Float64("burst", 0, "per-tenant burst capacity (0 = 2x rate)")
		tenantBudget = flag.Duration("tenant-budget", 0, "cumulative per-tenant solve budget (0 = unlimited)")
		timeout      = flag.Duration("timeout", 2*time.Second, "default per-request solve budget")
		maxBudget    = flag.Duration("max-budget", 10*time.Second, "cap on any requested solve budget")
		maxProcs     = flag.Int("max-procs", 64, "largest accepted instance size M")
		sweeps       = flag.Int("sweeps", 400, "annealing sweeps for the sa/hybrid backends")
		seed         = flag.Int64("seed", 1, "base seed for the stochastic backends")
		faultRate    = flag.Float64("fault-rate", 0, "injected fault rate on the hybrid backend (testing)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
		batchSize    = flag.Int("batch", 0, "coalesce up to N concurrent requests per hybrid cloud submission (0 disables batching)")
		batchWait    = flag.Duration("batch-wait", batch.DefaultMaxWait, "max time a request waits for its batch to fill")
		cacheCap     = flag.Int("cache", 0, "verified plan cache capacity in entries (0 disables caching)")
		cacheEps     = flag.Float64("cache-eps", plancache.DefaultEpsilon, "load quantization epsilon for cache fingerprints")
		stateDir     = flag.String("state-dir", "", "durable state directory: job journal + plan-cache snapshot survive restarts (empty disables durability)")
		fsyncPolicy  = flag.String("fsync", "always", "WAL sync policy: always, interval, none")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	solvers, closeBackends, err := buildBackends(*backends, *sweeps, *seed, *faultRate, *batchSize, *batchWait, reg)
	if err != nil {
		return err
	}
	defer closeBackends()
	router, err := route.New(route.Options{Obs: reg, Name: "qulrbd"}, solvers...)
	if err != nil {
		return err
	}
	// Durable state: with -state-dir the job lifecycle is journaled to a
	// CRC-framed WAL (unfinished jobs re-enqueue on restart, finished
	// ones are restored and re-verified) and the plan cache snapshots
	// its verified entries alongside it.
	var (
		serveLog, cacheLog   *wal.Log
		serveRecs, cacheRecs [][]byte
	)
	if *stateDir != "" {
		pol, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		if serveLog, serveRecs, err = wal.Open(wal.Options{
			Dir: *stateDir, Name: "serve", Policy: pol, Obs: reg,
		}); err != nil {
			return fmt.Errorf("job journal: %w", err)
		}
		defer serveLog.Close() //nolint:errcheck — closed explicitly after drain
		if *cacheCap > 0 {
			if cacheLog, cacheRecs, err = wal.Open(wal.Options{
				Dir: *stateDir, Name: "plancache", Policy: pol, Obs: reg,
			}); err != nil {
				return fmt.Errorf("plan-cache journal: %w", err)
			}
			defer cacheLog.Close() //nolint:errcheck
		}
	}

	var cache *plancache.Cache
	if *cacheCap > 0 {
		cfg := plancache.Config{Capacity: *cacheCap, Epsilon: *cacheEps, Obs: reg}
		if cacheLog != nil {
			cfg.Journal = cacheLog
		}
		cache = plancache.New(cfg)
		if len(cacheRecs) > 0 {
			kept, rejected := cache.Load(cacheRecs)
			fmt.Printf("qulrbd: plan cache restored %d entries (%d rejected)\n", kept, rejected)
		}
	}
	opts := serve.Options{
		Cache:         cache,
		Backend:       router,
		Obs:           reg,
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		Rate:          *rate,
		Burst:         *burst,
		NoRateLimit:   *rate <= 0,
		TenantBudget:  *tenantBudget,
		DefaultBudget: *timeout,
		MaxBudget:     *maxBudget,
		Limits:        serve.Limits{MaxProcs: *maxProcs},
	}
	if serveLog != nil {
		opts.Journal = serveLog
		opts.Recover = serveRecs
	}
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	if n := len(serveRecs); n > 0 {
		fmt.Printf("qulrbd: recovered %d journal records (%d jobs re-queued)\n",
			n, reg.Counter("serve.recovered").Value())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: serve.Handler(s)}

	ctx, stop := shutdown.Context(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	names := make([]string, len(solvers))
	for i, sv := range solvers {
		names[i] = sv.Name()
	}
	fmt.Printf("qulrbd: listening on http://%s (backends %s)\n", ln.Addr(), strings.Join(names, ","))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now force-kills via the default disposition

	fmt.Println("qulrbd: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	defer dcancel()
	// Stop accepting connections first, then drain the solve queue.
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "qulrbd: http shutdown:", err)
	}
	if err := s.Drain(dctx); err != nil {
		return err
	}
	fmt.Println("qulrbd: drained cleanly")
	return nil
}

// buildBackends assembles the requested solver set and returns a
// cleanup that releases whatever the backends own (the batching
// coalescer and its cloud client). The quantum engine is wrapped for
// the serving context: Serialized (its diagnostics are not
// synchronized) and Gated (the statevector simulator is O(2^n)).
// With -batch > 0 the hybrid backend is fronted by a request coalescer:
// up to batchSize concurrent solves ride one cloud submission, and a
// lone request waits at most batchWait before its batch flushes.
func buildBackends(list string, sweeps int, seed int64, faultRate float64, batchSize int, batchWait time.Duration, reg *obs.Registry) ([]solve.Solver, func(), error) {
	var out []solve.Solver
	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "":
		case "sa":
			out = append(out, &sa.Engine{Base: sa.Options{
				Sweeps: sweeps, Penalty: 5, PenaltyGrowth: 4, Seed: seed,
			}})
		case "tabu":
			out = append(out, tabu.NewEngine())
		case "exact":
			out = append(out, exact.NewEngine())
		case "hybrid":
			opt := hybrid.Options{Reads: 2, Sweeps: sweeps, Seed: seed + 1}
			if faultRate > 0 {
				opt.Faults = faults.NewInjector(faults.Chaos(seed, faultRate))
			}
			if batchSize > 0 {
				client := hybrid.NewClient(opt)
				co := batch.New(batch.Config{
					Client: client, MaxBatch: batchSize, MaxWait: batchWait, Obs: reg,
				})
				closers = append(closers, client.Close, co.Close)
				out = append(out, co)
			} else {
				out = append(out, hybrid.New(opt))
			}
		case "quantum":
			out = append(out, route.Serialized(route.Gated(quantum.NewEngine(), quantum.MaxQubits)))
		default:
			closeAll()
			return nil, nil, fmt.Errorf("unknown backend %q (want sa, tabu, exact, hybrid, quantum)", name)
		}
	}
	if len(out) == 0 {
		return nil, nil, errors.New("no backends selected")
	}
	return out, closeAll, nil
}

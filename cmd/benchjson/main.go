// benchjson turns `go test -bench` text output into a JSON artifact.
//
//	go test -bench=. -benchtime=1x ./... | benchjson -out BENCH_6.json
//
// The text stream is echoed to stdout unchanged so the human-readable
// benchmark lines still appear in CI logs; the parsed report — every
// benchmark with its full metric set, including custom units like the
// annealer's flips/s — is written atomically to -out.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "BENCH.json", "path of the JSON report to write")
	flag.Parse()

	var buf bytes.Buffer
	if _, err := io.Copy(io.MultiWriter(os.Stdout, &buf), os.Stdin); err != nil {
		fatal(err)
	}
	rep, err := benchfmt.Parse(&buf)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteFileAtomic(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Command qulrb solves a Load Rebalancing Problem instance with any of
// the repository's methods — the classical baselines (greedy, kk,
// proactlb) or the paper's hybrid classical-quantum CQM formulations
// (qcqm1, qcqm2) — and reports the paper's metrics.
//
// Usage:
//
//	qulrb -input imbalance.csv -algo qcqm1 -k 60 -output plan.csv
//
// The input is the Appendix-B CSV format (see internal/csvio and
// cmd/lrpgen to generate inputs); the output is the Appendix-B plan
// table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/balancer"
	"repro/internal/chameleon"
	"repro/internal/cqm"
	"repro/internal/csvio"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/lrp"
	"repro/internal/obs"
	"repro/internal/qlrb"
	"repro/internal/resilient"
	"repro/internal/sa"
	"repro/internal/shard"
	"repro/internal/shutdown"
	"repro/internal/solve"
)

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qulrb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "imbalance input CSV (required)")
		algo     = flag.String("algo", "qcqm1", "method: greedy | kk | proactlb | baseline | qcqm1 | qcqm2 | qaoa")
		k        = flag.Int("k", -1, "migration cap for the CQM methods (-1 = unconstrained)")
		output   = flag.String("output", "", "write the rebalancing plan CSV here (optional)")
		reads    = flag.Int("reads", 8, "hybrid solver reads")
		sweeps   = flag.Int("sweeps", 600, "annealing sweeps per read")
		layers   = flag.Int("layers", 2, "QAOA depth for -algo qaoa")
		seed     = flag.Int64("seed", 1, "solver seed")
		cold     = flag.Bool("cold", false, "disable classical warm starts for the CQM methods")
		resil    = flag.Bool("resilient", false, "wrap the hybrid solve in retry/backoff + breaker + classical SA fallback")
		sharded  = flag.Bool("shard", false, "solve qcqm1/qcqm2 hierarchically: partition into size-bounded groups, solve per-group sub-CQMs concurrently, coordinate across groups")
		shardSz  = flag.Int("shard-size", shard.DefaultSize, "maximum processes per group for -shard")
		faultPct = flag.Float64("fault-rate", 0, "inject simulated cloud faults at this probability per attempt (implies -resilient)")
		dump     = flag.String("dump-cqm", "", "also write the built CQM model to this file (qcqm1/qcqm2/qaoa)")
		sim      = flag.Bool("simulate", false, "replay baseline and plan on the runtime simulator")
		traceOut = flag.String("trace-out", "", "write the simulated execution log here (implies -simulate)")
		metrics  = flag.Bool("metrics", false, "print the solver metrics and phase-span snapshot after the solve")
		evOut    = flag.String("metrics-json", "", "write the structured JSON event log here (enables metrics collection)")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		return fmt.Errorf("missing -input")
	}

	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	in, err := csvio.ReadInput(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s\n", in)

	// SIGINT and SIGTERM cancel the solve; iterative methods return
	// their best partial result or a clean error instead of dying
	// mid-plan (SIGTERM is what schedulers and container runtimes send).
	ctx, cancel := shutdown.Context(context.Background())
	defer cancel()

	// A nil registry disables instrumentation everywhere it is passed;
	// the flags just decide whether one exists.
	var reg *obs.Registry
	if *metrics || *evOut != "" {
		reg = obs.NewRegistry()
	}

	var plan *lrp.Plan
	switch *algo {
	case "greedy":
		plan, err = balancer.Greedy{}.Rebalance(ctx, in)
	case "kk":
		plan, err = balancer.KK{}.Rebalance(ctx, in)
	case "proactlb":
		plan, err = balancer.ProactLB{}.Rebalance(ctx, in)
	case "baseline":
		plan, err = balancer.Baseline{}.Rebalance(ctx, in)
	case "general":
		// The per-task formulation: solves the instance's expanded task
		// list without the uniform-load assumption (identical result on
		// uniform inputs; meant for inputs derived from traces).
		tasks := lrp.ExpandTasks(in)
		res, gerr := qlrb.SolveGeneral(ctx, tasks, qlrb.GeneralBuildOptions{Procs: in.NumProcs(), K: *k},
			hybrid.Options{
				Reads: *reads, Sweeps: *sweeps, Seed: *seed,
				Presolve: true, Penalty: 5, PenaltyGrowth: 4,
				Timing: hybrid.DefaultTimingModel(),
			}, solve.WithObs(reg))
		if gerr != nil {
			return gerr
		}
		fmt.Printf("general: %d qubits (N*M), sample feasible: %v\n", res.Qubits, res.SampleFeasible)
		plan, err = lrp.PlanFromAssignment(in, tasks, res.Assign)
	case "qaoa":
		var stats qlrb.GateStats
		plan, stats, err = qlrb.SolveGateBased(ctx, in, qlrb.GateOptions{
			Build:  qlrb.BuildOptions{Form: qlrb.QCQM1, K: *k},
			Layers: *layers,
			Seed:   *seed,
		})
		if err == nil {
			fmt.Printf("qaoa: %d qubits, depth %d, expectation %.5f, sample feasible: %v\n",
				stats.Qubits, stats.Layers, stats.Expectation, stats.SampleFeasible)
			fmt.Printf("qaoa: approx ratio %.4f, ground probability %.4f\n",
				stats.ApproxRatio, stats.GroundProbability)
		}
		if err == nil && *dump != "" {
			err = dumpModel(in, qlrb.QCQM1, *k, *dump)
		}
	case "qcqm1", "qcqm2":
		form := qlrb.QCQM1
		if *algo == "qcqm2" {
			form = qlrb.QCQM2
		}
		if *dump != "" {
			if err := dumpModel(in, form, *k, *dump); err != nil {
				return err
			}
		}
		// Hybrid protocol: run the classical methods first and seed the
		// sampler with their plans, as the paper does.
		var warm []*lrp.Plan
		if !*cold {
			if p, err := (balancer.ProactLB{}).Rebalance(ctx, in); err == nil {
				warm = append(warm, p)
			}
			if p, err := (balancer.Greedy{}).Rebalance(ctx, in); err == nil {
				warm = append(warm, p)
			}
		}
		hopts := hybrid.Options{
			Reads:         *reads,
			Sweeps:        *sweeps,
			Seed:          *seed,
			Presolve:      true,
			Penalty:       5,
			PenaltyGrowth: 4,
			Timing:        hybrid.DefaultTimingModel(),
		}
		sopts := qlrb.SolveOptions{
			Build:     qlrb.BuildOptions{Form: form, K: *k},
			Hybrid:    hopts,
			WarmPlans: warm,
			Obs:       reg,
		}
		// The resilient path: deterministic fault injection on the
		// simulated cloud, retry/backoff + circuit breaker around it,
		// and a local SA fallback so a plan always comes back.
		var policy *resilient.Policy
		var injector *faults.Injector
		if *resil || *faultPct > 0 {
			if *faultPct > 0 {
				injector = faults.NewInjector(faults.Uniform(*seed, *faultPct))
				sopts.Hybrid.Faults = injector
			}
			ropts := resilient.DefaultOptions()
			ropts.Seed = *seed
			ropts.Fallback = &sa.Engine{Base: sa.Options{Sweeps: *sweeps, Penalty: 5, PenaltyGrowth: 4, Seed: *seed + 1}}
			ropts.OnRetry = func(attempt int, wait time.Duration, err error) {
				fmt.Printf("resilient: attempt %d failed (%v); retrying in %v\n", attempt, err, wait.Round(time.Millisecond))
			}
			ropts.OnFallback = func(err error) {
				fmt.Printf("resilient: cloud path unavailable (%v); degrading to local SA fallback\n", err)
			}
			policy = resilient.NewPolicy(ropts)
			sopts.Wrap = policy.Wrap
		}
		if *sharded {
			var sst shard.Stats
			plan, sst, err = shard.Solve(ctx, in, shard.Options{
				Size:   *shardSz,
				Build:  sopts.Build,
				Hybrid: sopts.Hybrid,
				Wrap:   sopts.Wrap,
				Obs:    reg,
			})
			if err == nil {
				fmt.Printf("shard: %d groups (size <= %d), %d levels, %d sub-solves, max sub-model %d qubits\n",
					sst.Groups, *shardSz, sst.Levels, sst.SubSolves, sst.MaxShardQubits)
				fmt.Printf("shard: %d coordination moves (%d skipped by load guard), %d fallbacks, load cap ok: %v, wall %v\n",
					sst.CoordMigrated, sst.SkippedMoves, sst.Fallbacks, sst.LoadCapOK, sst.Wall.Round(time.Millisecond))
				if injector != nil {
					fmt.Printf("faults: %d injected over %d attempt(s)\n", injector.Injected(), injector.Attempts())
				}
			}
			break
		}
		var stats qlrb.SolveStats
		plan, stats, err = qlrb.Solve(ctx, in, sopts)
		if err == nil {
			fmt.Printf("cqm: %d logical qubits, %d constraints (%d eq, %d ineq), sample feasible: %v\n",
				stats.Qubits, stats.Constraints, stats.EqConstraints, stats.IneqConstraints, stats.SampleFeasible)
			fmt.Printf("hybrid runtime: CPU %v (simulated, incl. cloud latency), QPU %v\n",
				stats.Solver.SimulatedCPU, stats.Solver.SimulatedQPU)
			if stats.Solver.Interrupted {
				fmt.Println("solve interrupted; best sample collected so far was used")
			}
			if policy != nil {
				tot := policy.Totals()
				fmt.Printf("resilient: %d attempt(s), %d retr%s, %d fallback(s), breaker %v\n",
					tot.Attempts, tot.Retries, plural(tot.Retries, "y", "ies"), tot.Fallbacks, policy.Breaker().State())
			}
			if injector != nil {
				fmt.Printf("faults: %d injected over %d attempt(s)\n", injector.Injected(), injector.Attempts())
			}
		}
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	if err != nil {
		return err
	}

	m := lrp.Evaluate(in, plan)
	fmt.Printf("result: R_imb %.5f -> %.5f, speedup %.4f, migrated %d tasks (%.2f per process)\n",
		in.Imbalance(), m.Imbalance, m.Speedup, m.Migrated, m.MigratedPerProc)

	if *output != "" {
		out, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := csvio.WriteOutput(out, in, plan); err != nil {
			return err
		}
		fmt.Printf("plan written to %s\n", *output)
	}

	if *sim || *traceOut != "" {
		if err := simulate(in, plan, *traceOut); err != nil {
			return err
		}
	}

	if reg != nil {
		snap := reg.Snapshot()
		if *metrics {
			fmt.Print(snap.Text())
		}
		if *evOut != "" {
			f, err := os.Create(*evOut)
			if err != nil {
				return err
			}
			werr := snap.WriteEvents(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Printf("metrics event log written to %s\n", *evOut)
		}
	}
	return nil
}

// simulate replays the baseline and the plan on the Chameleon-style
// runtime simulator, optionally persisting the plan run's execution log
// (consumable by lrpgen -kind trace).
func simulate(in *lrp.Instance, plan *lrp.Plan, traceOut string) error {
	cfg := chameleon.DefaultConfig()
	base, err := chameleon.New(cfg, in)
	if err != nil {
		return err
	}
	baseStats := base.RunIteration()

	rt, err := chameleon.New(cfg, in)
	if err != nil {
		return err
	}
	var events []chameleon.TraceEvent
	rt.SetTracer(func(e chameleon.TraceEvent) { events = append(events, e) })
	mig, err := rt.ApplyPlan(plan)
	if err != nil {
		return err
	}
	st := rt.RunIteration()
	fmt.Printf("simulation (%d workers/process): baseline makespan %.3f ms -> %.3f ms with plan (%d tasks in %d messages, %.3f ms comm)\n",
		cfg.Workers, baseStats.MakespanMs, st.MakespanMs, mig.Tasks, mig.Messages, mig.CommTimeMs)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := chameleon.WriteTraceLog(f, events); err != nil {
			return err
		}
		fmt.Printf("execution log written to %s (%d events)\n", traceOut, len(events))
	}
	return nil
}

// dumpModel writes the CQM built for the instance to path in the text
// serialization format of internal/cqm.
func dumpModel(in *lrp.Instance, form qlrb.Formulation, k int, path string) error {
	enc, err := qlrb.Build(in, qlrb.BuildOptions{Form: form, K: k})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := cqm.WriteModel(f, enc.Model); err != nil {
		return err
	}
	fmt.Printf("CQM model written to %s (%v)\n", path, enc.Model)
	return nil
}

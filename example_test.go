package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// The library in five lines: describe the imbalance, pick a budget, let
// the hybrid CQM solver plan the migrations.
func ExampleSolveCQM() {
	in, _ := repro.UniformInstance(10, []float64{1, 1, 1, 6})
	proact, _ := repro.ProactLB{}.Rebalance(context.Background(), in)
	plan, stats, _ := repro.SolveCQM(context.Background(), in, repro.CQMOptions{
		Form: repro.QCQM1,
		K:    proact.Migrated(),
		Seed: 1,
	})
	m := repro.Evaluate(in, plan)
	fmt.Printf("balanced=%v budget_respected=%v qubits_ok=%v\n",
		m.Imbalance < in.Imbalance()/2, m.Migrated <= proact.Migrated(), stats.Qubits > 0)
	// Output:
	// balanced=true budget_respected=true qubits_ok=true
}

// Classical methods share one interface with the quantum-hybrid ones.
func ExampleRebalancer() {
	in, _ := repro.UniformInstance(8, []float64{1, 4})
	methods := []repro.Rebalancer{
		repro.Greedy{},
		repro.ProactLB{},
		repro.NewQuantumRebalancer("Q_CQM1", repro.QCQM1, 4, 7),
	}
	for _, method := range methods {
		plan, _ := method.Rebalance(context.Background(), in)
		fmt.Printf("%s ok=%v\n", method.Name(), plan.Validate(in) == nil)
	}
	// Output:
	// Greedy ok=true
	// ProactLB ok=true
	// Q_CQM1 ok=true
}
